// Baseline: double-collect snapshot (simulated).
//
// The folklore algorithm the paper's snapshot improves on: a scan collects
// all n slots twice and retries until two consecutive collects are
// identical (comparing per-slot tags). Updates are a single tagged write.
//
// This is only *obstruction-free*: a scanner running alone finishes in 2n
// reads, but concurrent updaters can force it to retry forever — the
// starvation that wait-freedom (and E5's adversarial experiment) is about.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace apram {

template <class T>
class DoubleCollectSnapshotSim {
 public:
  struct Slot {
    std::uint64_t tag = 0;  // 0 = never written
    T value{};
  };

  DoubleCollectSnapshotSim(sim::World& world, int num_procs,
                           const std::string& name = "dcoll")
      : n_(num_procs), next_tag_(static_cast<std::size_t>(num_procs), 1) {
    for (int p = 0; p < n_; ++p) {
      slots_.push_back(&world.make_register<Slot>(
          name + ".slot[" + std::to_string(p) + "]", Slot{}, /*writer=*/p));
    }
  }

  int num_procs() const { return n_; }

  // One shared write.
  sim::SimCoro<void> update(sim::Context ctx, T v) {
    const auto pid = static_cast<std::size_t>(ctx.pid());
    co_await ctx.write(*slots_[pid], Slot{next_tag_[pid]++, std::move(v)});
  }

  // Retries until a clean double collect; `max_attempts` bounds the retries
  // (0 = unbounded). Returns nullopt if the bound is exhausted — the
  // behaviour wait-free algorithms never exhibit.
  sim::SimCoro<std::optional<std::vector<std::optional<T>>>> scan(
      sim::Context ctx, int max_attempts = 0) {
    std::vector<Slot> first(static_cast<std::size_t>(n_));
    std::vector<Slot> second(static_cast<std::size_t>(n_));
    for (int attempt = 0; max_attempts == 0 || attempt < max_attempts;
         ++attempt) {
      for (int q = 0; q < n_; ++q) {
        Slot s = co_await ctx.read(*slots_[static_cast<std::size_t>(q)]);
        first[static_cast<std::size_t>(q)] = s;
      }
      for (int q = 0; q < n_; ++q) {
        Slot s = co_await ctx.read(*slots_[static_cast<std::size_t>(q)]);
        second[static_cast<std::size_t>(q)] = s;
      }
      bool clean = true;
      for (int q = 0; q < n_; ++q) {
        if (first[static_cast<std::size_t>(q)].tag !=
            second[static_cast<std::size_t>(q)].tag) {
          clean = false;
          break;
        }
      }
      if (clean) {
        std::vector<std::optional<T>> view(static_cast<std::size_t>(n_));
        for (int q = 0; q < n_; ++q) {
          const Slot& s = second[static_cast<std::size_t>(q)];
          if (s.tag != 0) view[static_cast<std::size_t>(q)] = s.value;
        }
        co_return view;
      }
    }
    co_return std::nullopt;
  }

 private:
  int n_;
  std::vector<sim::Register<Slot>*> slots_;
  std::vector<std::uint64_t> next_tag_;
};

}  // namespace apram
