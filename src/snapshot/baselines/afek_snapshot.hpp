// Baseline: the Afek–Attiya–Dolev–Gafni–Merritt–Shavit wait-free snapshot
// ("Atomic snapshots of shared memory", 1990 — reference [2] of the paper,
// described there as having "time complexity comparable to ours").
//
// Each slot register holds (value, seq, embedded view). update performs an
// embedded scan and writes it alongside the new value; scan repeatedly
// double-collects, and if some process is seen to move *twice*, borrows that
// process's embedded view — which is guaranteed to have been taken inside
// the scan's own window. Both operations are wait-free with O(n²) reads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace apram {

template <class T>
class AfekSnapshotSim {
 public:
  using View = std::vector<std::optional<T>>;

  struct Slot {
    std::uint64_t seq = 0;  // 0 = never written
    T value{};
    View embedded;  // scan taken during the update that wrote this slot
  };

  AfekSnapshotSim(sim::World& world, int num_procs,
                  const std::string& name = "afek")
      : n_(num_procs) {
    for (int p = 0; p < n_; ++p) {
      slots_.push_back(&world.make_register<Slot>(
          name + ".slot[" + std::to_string(p) + "]", Slot{}, /*writer=*/p));
    }
  }

  int num_procs() const { return n_; }

  // Wait-free scan: at most n+1 double collects (each retry pins a distinct
  // mover; after n+1 retries some process moved twice).
  sim::SimCoro<View> scan(sim::Context ctx) {
    std::vector<std::uint64_t> moved(static_cast<std::size_t>(n_), 0);
    std::vector<Slot> first(static_cast<std::size_t>(n_));
    std::vector<Slot> second(static_cast<std::size_t>(n_));
    for (;;) {
      for (int q = 0; q < n_; ++q) {
        Slot s = co_await ctx.read(*slots_[static_cast<std::size_t>(q)]);
        first[static_cast<std::size_t>(q)] = s;
      }
      for (int q = 0; q < n_; ++q) {
        Slot s = co_await ctx.read(*slots_[static_cast<std::size_t>(q)]);
        second[static_cast<std::size_t>(q)] = s;
      }
      bool clean = true;
      for (int q = 0; q < n_; ++q) {
        const auto uq = static_cast<std::size_t>(q);
        if (first[uq].seq != second[uq].seq) {
          clean = false;
          if (moved[uq] != 0 && moved[uq] != second[uq].seq) {
            // q moved twice during this scan: its latest embedded view was
            // taken entirely within our window — linearize there.
            co_return second[uq].embedded;
          }
          moved[uq] = second[uq].seq;
        }
      }
      if (clean) {
        View view(static_cast<std::size_t>(n_));
        for (int q = 0; q < n_; ++q) {
          const auto uq = static_cast<std::size_t>(q);
          if (second[uq].seq != 0) view[uq] = second[uq].value;
        }
        co_return view;
      }
    }
  }

  // update = embedded scan + one write (the "helping" that makes scans
  // borrowable).
  sim::SimCoro<void> update(sim::Context ctx, T v) {
    View embedded = co_await scan(ctx);
    const auto pid = static_cast<std::size_t>(ctx.pid());
    Slot current = co_await ctx.read(*slots_[pid]);
    Slot next;
    next.seq = current.seq + 1;
    next.value = std::move(v);
    next.embedded = std::move(embedded);
    co_await ctx.write(*slots_[pid], std::move(next));
  }

 private:
  int n_;
  std::vector<sim::Register<Slot>*> slots_;
};

}  // namespace apram
