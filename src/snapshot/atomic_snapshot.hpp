// Atomic snapshot object (end of Section 6).
//
// The snapshot object gives each of n processes a slot; update(P, v) writes
// P's slot and scan() returns an instantaneous view of all n slots. It is
// the lattice Scan instantiated at TaggedVectorLattice: each value is an
// n-element array of tagged cells, the join is the element-wise max-by-tag,
// and ⊥ is the all-tags-zero array.
//
//  * update(P, v): bump P's tag and post the singleton array — one shared
//    write ("P writes the P-th position in the anchor array by initializing
//    scan[P][0] to an array whose P-th element has a higher tag...").
//  * scan(): ReadMax — a full Figure 5 Scan with the ⊥ contribution,
//    returning one cell per process (nullopt where no update has occurred).
//
// Scans are pairwise comparable (Lemma 32), which is what makes the returned
// views linearizable as instantaneous snapshots (Theorem 33).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "snapshot/lattice_scan.hpp"

namespace apram {

// A scan result: one optional value per process slot.
template <class T>
using SnapshotView = std::vector<std::optional<T>>;

template <class T>
class AtomicSnapshotSim {
 public:
  using Lattice = TaggedVectorLattice<T>;
  using LatticeValue = typename Lattice::Value;

  AtomicSnapshotSim(sim::World& world, int num_procs,
                    const std::string& name = "snap",
                    ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs),
        scan_(world, num_procs, name, mode),
        next_tag_(static_cast<std::size_t>(num_procs), 1) {}

  int num_procs() const { return n_; }

  // Installs `v` as P's current value. One shared-memory write.
  sim::SimCoro<void> update(sim::Context ctx, T v) {
    const auto pid = static_cast<std::size_t>(ctx.pid());
    const std::uint64_t tag = next_tag_[pid]++;
    co_await scan_.post(ctx, Lattice::singleton(static_cast<std::size_t>(n_),
                                                pid, tag, std::move(v)));
  }

  // Returns an instantaneous view of all slots.
  sim::SimCoro<SnapshotView<T>> scan(sim::Context ctx) {
    LatticeValue joined = co_await scan_.read_max(ctx);
    co_return unpack(joined);
  }

  // Scan(P, v) proper: install `v` and return a view that includes it.
  // Costs the same as scan() (the update rides along for free).
  sim::SimCoro<SnapshotView<T>> update_and_scan(sim::Context ctx, T v) {
    const auto pid = static_cast<std::size_t>(ctx.pid());
    const std::uint64_t tag = next_tag_[pid]++;
    LatticeValue joined = co_await scan_.scan(
        ctx, Lattice::singleton(static_cast<std::size_t>(n_), pid, tag,
                                std::move(v)));
    co_return unpack(joined);
  }

  // The raw lattice view (tags included) — used by tests checking Lemma 32
  // comparability and by the universal construction's precedence logic.
  sim::SimCoro<LatticeValue> scan_tagged(sim::Context ctx) {
    LatticeValue joined = co_await scan_.read_max(ctx);
    co_return joined;
  }

  LatticeScanSim<Lattice>& lattice_scan() { return scan_; }
  const LatticeScanSim<Lattice>& lattice_scan() const { return scan_; }

 private:
  SnapshotView<T> unpack(const LatticeValue& joined) const {
    SnapshotView<T> view(static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  LatticeScanSim<Lattice> scan_;
  std::vector<std::uint64_t> next_tag_;
};

}  // namespace apram
