// [[deprecated]] — snapshot/tree_scan.hpp is an alias kept for ONE PR.
//
// The stamped-CAS tree was promoted to the reusable farray primitive
// (farray/farray.hpp); TreeScan/TreeSnapshot live on as thin lattice
// clients in snapshot/tree_snapshot.hpp. Every in-tree includer has been
// migrated; this wrapper exists only so out-of-tree users get one release
// of warning instead of a hard break, mirroring how rt/lattice_scan_rt.hpp
// was retired (deprecated alias in PR 4, removed in PR 5).
//
// Removal note: delete this header in the NEXT PR. Include
// "snapshot/tree_snapshot.hpp" (the TreeScan/TreeSnapshot API is unchanged)
// or "farray/farray.hpp" (the generalized tree) instead.
#pragma once

// Clang emits #pragma message as a WARNING (-W#pragma-messages), which
// -Werror escalates to a hard build break — exactly what this grace-period
// header exists to avoid. So the nudge is opt-out: -Werror consumers define
// APRAM_SILENCE_TREE_SCAN_DEPRECATION (or -Wno-#pragma-messages) and keep
// building until the removal PR.
#ifndef APRAM_SILENCE_TREE_SCAN_DEPRECATION
#pragma message( \
    "snapshot/tree_scan.hpp is deprecated; include snapshot/tree_snapshot.hpp" \
    " (define APRAM_SILENCE_TREE_SCAN_DEPRECATION to silence)")
#endif

#include "snapshot/tree_snapshot.hpp"

namespace apram::snapshot {

// Attribute-carrying marker so `-Wdeprecated-declarations` users get a
// diagnostic even where `#pragma message` is filtered; unused otherwise.
using tree_scan_header_is_deprecated
    [[deprecated("include snapshot/tree_snapshot.hpp")]] = void;

}  // namespace apram::snapshot
