// TreeScan — a wait-free lattice snapshot with polylogarithmic updates.
//
// The Figure 5 scan costs Θ(n²) accesses per operation. Following the
// f-array line of work (Jayanti's f-arrays; Obryk's write-and-f-array;
// Naderibeni & Ruppert's polylog queue — see PAPERS.md), TreeScan arranges
// the processes' contributions at the leaves of a perfect binary tree whose
// internal nodes hold the join of their subtree:
//
//   update(P, v): join v into P's leaf (1 write), then walk the root path
//                 refreshing each node to join(children) — O(log n) accesses.
//   scan():       read the root — 1 access, independent of n.
//
// Layout (heap indexing over m = bit_ceil(n) leaf slots): internal nodes are
// 1..m-1 with children of i at 2i and 2i+1; leaf p sits at slot m+p; child
// slots ≥ m beyond n-1 are padding and read as ⊥ for free. n == 1 has no
// internal nodes — the root IS the single leaf.
//
// Registers. Leaves are single-writer registers (owner joins locally, so a
// leaf's value sequence is monotone in the lattice order). Internal nodes are
// multi-writer CAS registers holding Stamped<Value>: a refresh reads the node
// (cur), reads both children, and CASes {cur.seq+1, join(children)} over cur.
// Stamped equality compares seq only; every successful CAS installs a fresh
// seq, so value-equality identifies writes and the CAS is ABA-free (this is
// what CASValueRegister's pointer swap and the simulator's operator== CAS
// both require).
//
// Double-refresh helping lemma (why TWO attempts per node suffice): suppose
// both of P's CASes at node u fail. Each failure means another refresh
// installed in the window [P's node read, P's CAS]. Take W2 = the first
// successful install after P's second node read. W2's predecessor value is
// the one P's second read saw, which was installed no earlier than W1 (the
// install that failed P's first CAS), so W2's child reads happen after P's
// first node read — and hence after P completed the child level. Child
// sequences are monotone, so W2's install covers P's contribution, and W2
// lands before P's second CAS returns. Inductively the root contains the
// contribution by the time update() returns.
//
// Node monotonicity (why scan is ONE read, not a double-collect): a
// successful refresh at u read cur, then the children, then installed their
// join. The previous install's child reads happened before P's node read
// (release/acquire through the node), and child sequences are monotone, so
// the new join dominates the old value. Root values therefore form a chain
// in the lattice order: any two scans are comparable (the Lemma 32 property)
// and an update's contribution appears in every scan that starts after the
// update returns — linearizability by the same argument as Theorem 33.
//
// Step counts (exact for n a power of two; upper bounds otherwise, since
// padding-leaf reads are free and h = ⌈log2 n⌉):
//
//   update, solo:       1 + 4h   (per level: node read + 2 child reads + CAS)
//   update, contended:  ≤ 1 + 8h (each level retried once)
//   scan:               1        (independent of n)
//
// versus Figure 5's n²−1 reads and n+1 writes per operation (§6.2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "lattice/lattice.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram::snapshot {

// A value plus a write-identifying stamp. operator== compares ONLY seq: two
// Stamped values are "equal" iff they are the same write, which is exactly
// the identity a value-compared CAS needs to be ABA-free.
template <class T>
struct Stamped {
  std::uint64_t seq = 0;
  T v{};

  friend bool operator==(const Stamped& a, const Stamped& b) {
    return a.seq == b.seq;
  }
};

// Tree height h = log2(bit_ceil(n)) — constexpr so tests can assert against
// closed forms.
constexpr int tree_scan_height(int num_procs) {
  int m = 1;
  int h = 0;
  while (m < num_procs) {
    m *= 2;
    ++h;
  }
  return h;
}

// Exact when n is a power of two; an upper bound otherwise (padding-leaf
// reads cost nothing).
constexpr std::uint64_t tree_scan_update_solo_accesses(int num_procs) {
  return 1 + 4ull * static_cast<std::uint64_t>(tree_scan_height(num_procs));
}

// Worst case under contention: every level needs both refresh attempts.
constexpr std::uint64_t tree_scan_update_max_accesses(int num_procs) {
  return 1 + 8ull * static_cast<std::uint64_t>(tree_scan_height(num_procs));
}

constexpr std::uint64_t tree_scan_scan_accesses() { return 1; }

template <class B, Semilattice L>
  requires api::BackendFor<B, typename L::Value> &&
           api::CasBackendFor<B, Stamped<typename L::Value>>
class TreeScan {
 public:
  using Value = typename L::Value;
  using Node = Stamped<Value>;
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;

  TreeScan(typename B::Mem& mem, int num_procs) : n_(num_procs) {
    APRAM_CHECK(num_procs >= 1);
    m_ = 1;
    while (m_ < n_) m_ *= 2;
    leaves_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      leaves_.push_back(&mem.template make<Value>(
          "leaf[" + std::to_string(p) + "]", L::bottom(), /*writer=*/p));
    }
    nodes_.assign(static_cast<std::size_t>(m_), nullptr);
    for (int i = 1; i < m_; ++i) {
      nodes_[static_cast<std::size_t>(i)] = &mem.template make_cas<Node>(
          "node[" + std::to_string(i) + "]", Node{0, L::bottom()});
    }
    caches_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      caches_.push_back(std::make_unique<Cache>());
    }
  }

  int num_procs() const { return n_; }
  int height() const { return tree_scan_height(n_); }

  // Joins v into the lattice state; on return the contribution is visible
  // at the root (see the helping lemma above). ≤ 1 + 8·height() accesses.
  //
  // Style note: every co_await sits alone in its own statement (GCC 12
  // wrong-code workaround, as in lattice_scan.hpp).
  Coro<void> update(Ctx ctx, Value v) {
    const int p = ctx.pid();
    Cache& cache = *caches_[static_cast<std::size_t>(p)];
    ctx.op_begin(obs::OpKind::kTreeUpdate);
    Value nv = L::join(std::move(v), cache.leaf);
    cache.leaf = nv;
    co_await ctx.write(leaf(p), std::move(nv));
    int u = (m_ + p) / 2;  // 0 when m_ == 1: the leaf is the root
    int level = 0;
    while (u >= 1) {
      ctx.op_phase(obs::Phase::kRefresh, level);
      bool installed = false;
      for (int attempt = 0; attempt < 2; ++attempt) {
        Node cur = co_await ctx.read(node(u));
        const int lc = 2 * u;
        const int rc = 2 * u + 1;
        Value joined = L::bottom();
        if (lc >= m_) {
          if (lc - m_ < n_) {
            Value lv = co_await ctx.read(leaf(lc - m_));
            joined = L::join(std::move(joined), lv);
          }
        } else {
          Node ls = co_await ctx.read(node(lc));
          joined = L::join(std::move(joined), ls.v);
        }
        if (rc >= m_) {
          if (rc - m_ < n_) {
            Value rv = co_await ctx.read(leaf(rc - m_));
            joined = L::join(std::move(joined), rv);
          }
        } else {
          Node rs = co_await ctx.read(node(rc));
          joined = L::join(std::move(joined), rs.v);
        }
        Node next{cur.seq + 1, std::move(joined)};
        bool ok = co_await ctx.cas(node(u), std::move(cur), std::move(next));
        if (ok) {
          installed = true;
          break;
        }
      }
      // Both CASes lost: the double-refresh lemma says a rival's install
      // covered this contribution — the op was helped at node u.
      if (!installed) ctx.op_help(u);
      u /= 2;
      ++level;
    }
    ctx.op_end(obs::OpKind::kTreeUpdate);
  }

  // The join of all contributions of updates that completed before the scan
  // started (and possibly some concurrent ones). One register access.
  Coro<Value> scan(Ctx ctx) {
    ctx.op_begin(obs::OpKind::kTreeScan);
    if (m_ == 1) {
      Value v = co_await ctx.read(leaf(0));
      ctx.op_end(obs::OpKind::kTreeScan);
      co_return v;
    }
    Node root = co_await ctx.read(node(1));
    ctx.op_end(obs::OpKind::kTreeScan);
    co_return std::move(root.v);
  }

  Coro<Value> update_and_scan(Ctx ctx, Value v) {
    co_await update(ctx, std::move(v));
    Value out = co_await scan(ctx);
    co_return out;
  }

  // Test/debug access.
  const typename B::template Reg<Value>& leaf_at(int p) const {
    return leaf(p);
  }
  const typename B::template CasReg<Node>& node_at(int i) const {
    return node(i);
  }

 private:
  struct alignas(64) Cache {
    Value leaf = L::bottom();  // mirror of own leaf (single writer)
  };

  typename B::template Reg<Value>& leaf(int p) const {
    APRAM_CHECK(p >= 0 && p < n_);
    return *leaves_[static_cast<std::size_t>(p)];
  }
  typename B::template CasReg<Node>& node(int i) const {
    APRAM_CHECK(i >= 1 && i < m_);
    return *nodes_[static_cast<std::size_t>(i)];
  }

  int n_;
  int m_;  // bit_ceil(n): number of leaf slots of the perfect tree
  std::vector<typename B::template Reg<Value>*> leaves_;       // [n]
  std::vector<typename B::template CasReg<Node>*> nodes_;      // [m], 0 unused
  std::vector<std::unique_ptr<Cache>> caches_;                 // [n]
};

// Snapshot object over the tagged-vector lattice (end of §6), tree flavour:
// the TreeScan counterpart of AtomicSnapshotSim / AtomicSnapshotRT.
template <class B, class T>
class TreeSnapshot {
 public:
  using Lattice = TaggedVectorLattice<T>;
  using LatticeValue = typename Lattice::Value;
  using View = std::vector<std::optional<T>>;
  using Ctx = typename B::Ctx;
  template <class U>
  using Coro = typename B::template Coro<U>;

  TreeSnapshot(typename B::Mem& mem, int num_procs)
      : n_(num_procs),
        scan_(mem, num_procs),
        next_tag_(static_cast<std::size_t>(num_procs)) {
    for (auto& t : next_tag_) t = std::make_unique<Tag>();
  }

  int num_procs() const { return n_; }

  Coro<void> update(Ctx ctx, T v) {
    const int p = ctx.pid();
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    LatticeValue s = Lattice::singleton(static_cast<std::size_t>(n_),
                                        static_cast<std::size_t>(p), tag,
                                        std::move(v));
    co_await scan_.update(ctx, std::move(s));
  }

  Coro<View> scan(Ctx ctx) {
    LatticeValue joined = co_await scan_.scan(ctx);
    co_return unpack(joined);
  }

  Coro<View> update_and_scan(Ctx ctx, T v) {
    co_await update(ctx, std::move(v));
    LatticeValue joined = co_await scan_.scan(ctx);
    co_return unpack(joined);
  }

  TreeScan<B, Lattice>& tree() { return scan_; }

 private:
  struct alignas(64) Tag {
    std::uint64_t value = 0;
  };

  View unpack(const LatticeValue& joined) const {
    View view(static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  TreeScan<B, Lattice> scan_;
  std::vector<std::unique_ptr<Tag>> next_tag_;
};

// --------------------------------------------------------------------------
// rt convenience wrappers: own the Mem, expose the int-pid call style of the
// other rt structures. Thread p may call only the p-indexed entry points'
// update paths; scans are callable by anyone.

template <Semilattice L>
class TreeScanRT {
 public:
  using Value = typename L::Value;

  explicit TreeScanRT(int num_procs)
      : mem_(num_procs), impl_(mem_, num_procs) {}

  int num_procs() const { return impl_.num_procs(); }

  void update(int p, Value v) {
    impl_.update(api::RtBackend::Ctx{p}, std::move(v)).get();
  }
  Value scan(int p) { return impl_.scan(api::RtBackend::Ctx{p}).get(); }
  Value update_and_scan(int p, Value v) {
    return impl_.update_and_scan(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  // See api::RtBackend::Mem::attach_obs / attach_injector /
  // reclaim_stats / export_reclaim_gauges.
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }

 private:
  api::RtBackend::Mem mem_;
  TreeScan<api::RtBackend, L> impl_;
};

template <class T>
class TreeSnapshotRT {
 public:
  using View = std::vector<std::optional<T>>;

  explicit TreeSnapshotRT(int num_procs)
      : mem_(num_procs), impl_(mem_, num_procs) {}

  int num_procs() const { return impl_.num_procs(); }

  void update(int p, T v) {
    impl_.update(api::RtBackend::Ctx{p}, std::move(v)).get();
  }
  View scan(int p) { return impl_.scan(api::RtBackend::Ctx{p}).get(); }
  View update_and_scan(int p, T v) {
    return impl_.update_and_scan(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }

 private:
  api::RtBackend::Mem mem_;
  TreeSnapshot<api::RtBackend, T> impl_;
};

}  // namespace apram::snapshot
