// [[deprecated]] — snapshot/tree_scan.hpp is an alias kept for ONE PR.
//
// The stamped-CAS tree was promoted to the reusable farray primitive
// (farray/farray.hpp); TreeScan/TreeSnapshot live on as thin lattice
// clients in snapshot/tree_snapshot.hpp. Every in-tree includer has been
// migrated; this wrapper exists only so out-of-tree users get one release
// of warning instead of a hard break, mirroring how rt/lattice_scan_rt.hpp
// was retired (deprecated alias in PR 4, removed in PR 5).
//
// Removal note: delete this header in the NEXT PR. Include
// "snapshot/tree_snapshot.hpp" (the TreeScan/TreeSnapshot API is unchanged)
// or "farray/farray.hpp" (the generalized tree) instead.
#pragma once

#pragma message( \
    "snapshot/tree_scan.hpp is deprecated; include snapshot/tree_snapshot.hpp")

#include "snapshot/tree_snapshot.hpp"

namespace apram::snapshot {

// Attribute-carrying marker so `-Wdeprecated-declarations` users get a
// diagnostic even where `#pragma message` is filtered; unused otherwise.
using tree_scan_header_is_deprecated
    [[deprecated("include snapshot/tree_snapshot.hpp")]] = void;

}  // namespace apram::snapshot
