// Operation accounting helpers for the §6.2 complexity claims.
#pragma once

#include <cstdint>

#include "sim/world.hpp"
#include "snapshot/lattice_scan.hpp"

namespace apram {

// Closed-form per-Scan costs from §6.2.
std::uint64_t expected_scan_reads(int n, ScanMode mode);
std::uint64_t expected_scan_writes(int n, ScanMode mode);

// Measures the read/write delta of one process across a region of code.
class StepDelta {
 public:
  StepDelta(const sim::World& world, int pid)
      : world_(&world), pid_(pid), before_(world.counts(pid)) {}

  sim::StepCounts delta() const {
    const sim::StepCounts now = world_->counts(pid_);
    return {now.reads - before_.reads, now.writes - before_.writes};
  }

  void reset() { before_ = world_->counts(pid_); }

 private:
  const sim::World* world_;
  int pid_;
  sim::StepCounts before_;
};

}  // namespace apram
