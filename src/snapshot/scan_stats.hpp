// Closed-form operation accounting for the §6.2 complexity claims.
//
// Measurement itself lives in apram::obs: attach a metrics registry to the
// World (World::attach_metrics) and measure regions with obs::CounterDelta.
// This header keeps only the paper's closed forms to compare against.
#pragma once

#include <cstdint>

#include "snapshot/lattice_scan.hpp"

namespace apram {

// Closed-form per-Scan costs from §6.2.
std::uint64_t expected_scan_reads(int n, ScanMode mode);
std::uint64_t expected_scan_writes(int n, ScanMode mode);

}  // namespace apram
