// The atomic scan of Section 6 (Figure 5), over an arbitrary ∨-semilattice —
// written ONCE against the apram::api register-backend concept and
// instantiated both in the simulator (apram::LatticeScanSim below) and on
// real threads (apram::rt::LatticeScanRT / apram::rt::AtomicSnapshotRT,
// also below).
//
// Processes share an n×(n+2) matrix `scan[1..n][0..n+1]` of single-writer
// multi-reader registers holding lattice values; process P writes only row P.
// The Scan(P, v) primitive is (Figure 5):
//
//     scan[P][0] := v ∨ scan[P][0]
//     for i in 1..n+1:
//       for Q in 1..n:
//         scan[P][i] := scan[P][i] ∨ scan[Q][i-1]
//     return scan[P][n+1]
//
// Lemma 32 shows any two Scan return values are comparable in the lattice,
// which yields linearizability (Theorem 33).
//
// Operation accounting (§6.2). With per-pass accumulation (join locally, one
// register write per pass — the counting the paper uses):
//
//   kPlain:     n²+n+1 reads, n+2 writes per Scan
//   kOptimized: n²−1  reads, n+1 writes per Scan
//
// The optimized mode drops the final write (scan[P][n+1] is returned locally)
// and replaces reads of P's own registers with a local cache — sound because
// each register has a single writer, so the owner always knows its contents.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "api/rt_backend.hpp"
#include "api/sim_backend.hpp"
#include "lattice/lattice.hpp"
#include "obs/span.hpp"
#include "sim/world.hpp"

namespace apram {

enum class ScanMode {
  kPlain,      // every access in Figure 5 hits shared memory
  kOptimized,  // §6.2: skip self-reads and the final write
};

namespace snapshot {

template <class B, Semilattice L>
  requires api::BackendFor<B, typename L::Value>
class LatticeScan {
 public:
  using Value = typename L::Value;
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;

  // Creates the scan matrix in `mem` for `num_procs` processes. All
  // registers are single-writer: row P is writable only by pid P.
  LatticeScan(typename B::Mem& mem, int num_procs,
              ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs), mode_(mode) {
    APRAM_CHECK(num_procs >= 1);
    regs_.resize(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      regs_[static_cast<std::size_t>(p)].reserve(
          static_cast<std::size_t>(n_) + 2);
      for (int i = 0; i <= n_ + 1; ++i) {
        regs_[static_cast<std::size_t>(p)].push_back(
            &mem.template make<Value>("scan[" + std::to_string(p) + "][" +
                                          std::to_string(i) + "]",
                                      L::bottom(), /*writer=*/p));
      }
    }
    caches_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      caches_.push_back(std::make_unique<Cache>());
      caches_.back()->row.assign(static_cast<std::size_t>(n_) + 2,
                                 L::bottom());
    }
  }

  int num_procs() const { return n_; }
  ScanMode mode() const { return mode_; }

  // Figure 5 verbatim. Joins v into P's input cell, performs the n+1 merge
  // passes, and returns the join of everything the passes saw.
  //
  // Style note: every co_await sits alone in its own statement. GCC 12
  // miscompiles co_await inside conditional expressions and call arguments
  // for coroutines with non-trivially-copyable locals (wrong-code, observed
  // as an infinite loop), so the hoisted form is mandatory here.
  Coro<Value> scan(Ctx ctx, Value v) {
    const int p = ctx.pid();
    auto& cache = caches_[static_cast<std::size_t>(p)]->row;

    // Span markers are local bookkeeping (zero model steps); explicit
    // begin/end, not RAII, so a crashed frame leaves the span open — see
    // obs/span.hpp.
    ctx.op_begin(obs::OpKind::kScan);

    // scan[P][0] := v ∨ scan[P][0]
    Value acc0 = std::move(v);
    if (mode_ == ScanMode::kPlain) {
      Value old0 = co_await ctx.read(reg(p, 0));
      acc0 = L::join(std::move(acc0), old0);
    } else {
      acc0 = L::join(std::move(acc0), cache[0]);
    }
    cache[0] = acc0;
    co_await ctx.write(reg(p, 0), std::move(acc0));

    for (int i = 1; i <= n_ + 1; ++i) {
      // Per-pass accumulation: start from P's current level-i value (known
      // locally — single writer), join every level-(i-1) register, write the
      // result once. This is the per-pass cost §6.2 counts.
      ctx.op_phase(obs::Phase::kCollect, i);
      Value acc = cache[static_cast<std::size_t>(i)];
      for (int q = 0; q < n_; ++q) {
        if (q == p && mode_ == ScanMode::kOptimized) {
          acc = L::join(std::move(acc), cache[static_cast<std::size_t>(i - 1)]);
        } else {
          Value got = co_await ctx.read(reg(q, i - 1));
          acc = L::join(std::move(acc), got);
        }
      }
      cache[static_cast<std::size_t>(i)] = acc;
      if (i <= n_ || mode_ == ScanMode::kPlain) {
        co_await ctx.write(reg(p, i), std::move(acc));
      }
    }
    ctx.op_end(obs::OpKind::kScan);
    co_return cache[static_cast<std::size_t>(n_) + 1];
  }

  // Write_L(P, v): contribute v to the lattice state (discard the join).
  // The nested scan() opens its own kScan span, which owns the accesses;
  // this outer span records the operation the caller asked for.
  Coro<void> write_l(Ctx ctx, Value v) {
    ctx.op_begin(obs::OpKind::kWriteL);
    co_await scan(ctx, std::move(v));
    ctx.op_end(obs::OpKind::kWriteL);
  }

  // ReadMax(P): the join of all values written so far.
  Coro<Value> read_max(Ctx ctx) {
    ctx.op_begin(obs::OpKind::kReadMax);
    Value joined = co_await scan(ctx, L::bottom());
    ctx.op_end(obs::OpKind::kReadMax);
    co_return joined;
  }

  // Cheap contribution used by the snapshot object (§6, closing paragraph):
  // P "writes the P-th position in the anchor array by initializing
  // scan[P][0]" — one write (plus one read of the old cell in kPlain mode),
  // with no merge passes. Readers pick the value up via scan().
  Coro<void> post(Ctx ctx, Value v) {
    const int p = ctx.pid();
    auto& cache = caches_[static_cast<std::size_t>(p)]->row;
    ctx.op_begin(obs::OpKind::kPost);
    Value acc = std::move(v);
    if (mode_ == ScanMode::kPlain) {
      Value old0 = co_await ctx.read(reg(p, 0));
      acc = L::join(std::move(acc), old0);
    } else {
      acc = L::join(std::move(acc), cache[0]);
    }
    cache[0] = acc;
    co_await ctx.write(reg(p, 0), std::move(acc));
    ctx.op_end(obs::OpKind::kPost);
  }

  // Test/debug access to the underlying register matrix.
  const typename B::template Reg<Value>& register_at(int p, int i) const {
    return reg(p, i);
  }

 private:
  // Each process's cache row lives on its own cache lines (matters for the
  // rt backend; harmless in the simulator).
  struct alignas(64) Cache {
    std::vector<Value> row;
  };

  typename B::template Reg<Value>& reg(int p, int i) const {
    APRAM_CHECK(p >= 0 && p < n_ && i >= 0 && i <= n_ + 1);
    return *regs_[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
  }

  int n_;
  ScanMode mode_;
  // [n][n+2]; cache_[p] mirrors row p, coherent because p is its only writer.
  std::vector<std::vector<typename B::template Reg<Value>*>> regs_;
  std::vector<std::unique_ptr<Cache>> caches_;
};

}  // namespace snapshot

// Simulator instantiation under the historical name and constructor
// signature (World& + register-name prefix). Forwarding methods hand back
// the impl's SimCoro directly.
template <Semilattice L>
class LatticeScanSim {
 public:
  using Value = typename L::Value;

  LatticeScanSim(sim::World& world, int num_procs, const std::string& name,
                 ScanMode mode = ScanMode::kOptimized)
      : mem_(world, name), impl_(mem_, num_procs, mode) {}

  int num_procs() const { return impl_.num_procs(); }
  ScanMode mode() const { return impl_.mode(); }

  sim::SimCoro<Value> scan(sim::Context ctx, Value v) {
    return impl_.scan(ctx, std::move(v));
  }
  sim::SimCoro<void> write_l(sim::Context ctx, Value v) {
    return impl_.write_l(ctx, std::move(v));
  }
  sim::SimCoro<Value> read_max(sim::Context ctx) {
    return impl_.read_max(ctx);
  }
  sim::SimCoro<void> post(sim::Context ctx, Value v) {
    return impl_.post(ctx, std::move(v));
  }

  const sim::Register<Value>& register_at(int p, int i) const {
    return impl_.register_at(p, i);
  }

 private:
  api::SimBackend::Mem mem_;
  snapshot::LatticeScan<api::SimBackend, L> impl_;
};

// Real-thread instantiations under the historical rt class names: thin
// wrappers that instantiate the backend-templated class with
// apram::api::RtBackend and expose the old int-pid call style. New code
// should hold an api::RtBackend::Mem and the backend-templated class
// directly. Thread p may call only the p-indexed entry points (the
// single-writer discipline of the model).
namespace rt {

template <Semilattice L>
class LatticeScanRT {
 public:
  using Value = typename L::Value;

  explicit LatticeScanRT(int num_procs, ScanMode mode = ScanMode::kOptimized)
      : mem_(num_procs), impl_(mem_, num_procs, mode) {}

  int num_procs() const { return impl_.num_procs(); }

  // Figure 5; callable only by thread p.
  Value scan(int p, Value v) {
    return impl_.scan(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  void write_l(int p, Value v) {
    impl_.write_l(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  Value read_max(int p) {
    return impl_.read_max(api::RtBackend::Ctx{p}).get();
  }

  // One-write contribution (snapshot update path).
  void post(int p, Value v) {
    impl_.post(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  // Instruments every register of the scan matrix: aggregate counters
  // `rt.<name>.reads` / `rt.<name>.writes` (and `.cas`, unused here) in
  // `registry`, plus per-access trace events (object id = p*(n+2)+i) when
  // `tracer` is non-null. Attach before concurrent use; registry/tracer must
  // outlive this object.
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }

  // Attaches a fault injector to every register of the scan matrix (see
  // fault/rt_inject.hpp); nullptr detaches. Attach before concurrent use.
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }

  // Reclamation accounting over the whole scan matrix; exact at quiescence
  // (see api::RtBackend::Mem::reclaim_stats / export_reclaim_gauges).
  reclaim::ReclaimStats reclaim_stats() const { return mem_.reclaim_stats(); }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }

 private:
  api::RtBackend::Mem mem_;
  snapshot::LatticeScan<api::RtBackend, L> impl_;
};

// Snapshot object on the tagged-vector lattice (end of §6), rt flavour.
template <class T>
class AtomicSnapshotRT {
 public:
  using Lattice = TaggedVectorLattice<T>;
  using LatticeValue = typename Lattice::Value;

  explicit AtomicSnapshotRT(int num_procs,
                            ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs),
        scan_(num_procs, mode),
        next_tag_(static_cast<std::size_t>(num_procs)) {
    for (auto& t : next_tag_) t = std::make_unique<Tag>();
  }

  int num_procs() const { return n_; }

  void update(int p, T v) {
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    scan_.post(p, Lattice::singleton(static_cast<std::size_t>(n_),
                                     static_cast<std::size_t>(p), tag,
                                     std::move(v)));
  }

  std::vector<std::optional<T>> scan(int p) {
    return unpack(scan_.read_max(p));
  }

  // Forwards to the underlying scan matrix (see LatticeScanRT::attach_obs).
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    scan_.attach_obs(registry, name, tracer);
  }

  void attach_injector(fault::RtInjector* injector) {
    scan_.attach_injector(injector);
  }

  reclaim::ReclaimStats reclaim_stats() const {
    return scan_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    scan_.export_reclaim_gauges(registry, name);
  }

  std::vector<std::optional<T>> update_and_scan(int p, T v) {
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    return unpack(scan_.scan(
        p, Lattice::singleton(static_cast<std::size_t>(n_),
                              static_cast<std::size_t>(p), tag,
                              std::move(v))));
  }

 private:
  struct alignas(64) Tag {
    std::uint64_t value = 0;
  };

  std::vector<std::optional<T>> unpack(const LatticeValue& joined) const {
    std::vector<std::optional<T>> view(static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  LatticeScanRT<Lattice> scan_;
  std::vector<std::unique_ptr<Tag>> next_tag_;
};

}  // namespace rt

}  // namespace apram
