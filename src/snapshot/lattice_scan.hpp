// The atomic scan of Section 6 (Figure 5), over an arbitrary ∨-semilattice —
// written ONCE against the apram::api register-backend concept and
// instantiated both in the simulator (apram::LatticeScanSim below) and on
// real threads (apram::rt::LatticeScanRT in rt/lattice_scan_rt.hpp).
//
// Processes share an n×(n+2) matrix `scan[1..n][0..n+1]` of single-writer
// multi-reader registers holding lattice values; process P writes only row P.
// The Scan(P, v) primitive is (Figure 5):
//
//     scan[P][0] := v ∨ scan[P][0]
//     for i in 1..n+1:
//       for Q in 1..n:
//         scan[P][i] := scan[P][i] ∨ scan[Q][i-1]
//     return scan[P][n+1]
//
// Lemma 32 shows any two Scan return values are comparable in the lattice,
// which yields linearizability (Theorem 33).
//
// Operation accounting (§6.2). With per-pass accumulation (join locally, one
// register write per pass — the counting the paper uses):
//
//   kPlain:     n²+n+1 reads, n+2 writes per Scan
//   kOptimized: n²−1  reads, n+1 writes per Scan
//
// The optimized mode drops the final write (scan[P][n+1] is returned locally)
// and replaces reads of P's own registers with a local cache — sound because
// each register has a single writer, so the owner always knows its contents.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "api/sim_backend.hpp"
#include "lattice/lattice.hpp"
#include "sim/world.hpp"

namespace apram {

enum class ScanMode {
  kPlain,      // every access in Figure 5 hits shared memory
  kOptimized,  // §6.2: skip self-reads and the final write
};

namespace snapshot {

template <class B, Semilattice L>
  requires api::BackendFor<B, typename L::Value>
class LatticeScan {
 public:
  using Value = typename L::Value;
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;

  // Creates the scan matrix in `mem` for `num_procs` processes. All
  // registers are single-writer: row P is writable only by pid P.
  LatticeScan(typename B::Mem& mem, int num_procs,
              ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs), mode_(mode) {
    APRAM_CHECK(num_procs >= 1);
    regs_.resize(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      regs_[static_cast<std::size_t>(p)].reserve(
          static_cast<std::size_t>(n_) + 2);
      for (int i = 0; i <= n_ + 1; ++i) {
        regs_[static_cast<std::size_t>(p)].push_back(
            &mem.template make<Value>("scan[" + std::to_string(p) + "][" +
                                          std::to_string(i) + "]",
                                      L::bottom(), /*writer=*/p));
      }
    }
    caches_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      caches_.push_back(std::make_unique<Cache>());
      caches_.back()->row.assign(static_cast<std::size_t>(n_) + 2,
                                 L::bottom());
    }
  }

  int num_procs() const { return n_; }
  ScanMode mode() const { return mode_; }

  // Figure 5 verbatim. Joins v into P's input cell, performs the n+1 merge
  // passes, and returns the join of everything the passes saw.
  //
  // Style note: every co_await sits alone in its own statement. GCC 12
  // miscompiles co_await inside conditional expressions and call arguments
  // for coroutines with non-trivially-copyable locals (wrong-code, observed
  // as an infinite loop), so the hoisted form is mandatory here.
  Coro<Value> scan(Ctx ctx, Value v) {
    const int p = ctx.pid();
    auto& cache = caches_[static_cast<std::size_t>(p)]->row;

    // scan[P][0] := v ∨ scan[P][0]
    Value acc0 = std::move(v);
    if (mode_ == ScanMode::kPlain) {
      Value old0 = co_await ctx.read(reg(p, 0));
      acc0 = L::join(std::move(acc0), old0);
    } else {
      acc0 = L::join(std::move(acc0), cache[0]);
    }
    cache[0] = acc0;
    co_await ctx.write(reg(p, 0), std::move(acc0));

    for (int i = 1; i <= n_ + 1; ++i) {
      // Per-pass accumulation: start from P's current level-i value (known
      // locally — single writer), join every level-(i-1) register, write the
      // result once. This is the per-pass cost §6.2 counts.
      Value acc = cache[static_cast<std::size_t>(i)];
      for (int q = 0; q < n_; ++q) {
        if (q == p && mode_ == ScanMode::kOptimized) {
          acc = L::join(std::move(acc), cache[static_cast<std::size_t>(i - 1)]);
        } else {
          Value got = co_await ctx.read(reg(q, i - 1));
          acc = L::join(std::move(acc), got);
        }
      }
      cache[static_cast<std::size_t>(i)] = acc;
      if (i <= n_ || mode_ == ScanMode::kPlain) {
        co_await ctx.write(reg(p, i), std::move(acc));
      }
    }
    co_return cache[static_cast<std::size_t>(n_) + 1];
  }

  // Write_L(P, v): contribute v to the lattice state (discard the join).
  Coro<void> write_l(Ctx ctx, Value v) {
    co_await scan(ctx, std::move(v));
  }

  // ReadMax(P): the join of all values written so far.
  Coro<Value> read_max(Ctx ctx) {
    Value joined = co_await scan(ctx, L::bottom());
    co_return joined;
  }

  // Cheap contribution used by the snapshot object (§6, closing paragraph):
  // P "writes the P-th position in the anchor array by initializing
  // scan[P][0]" — one write (plus one read of the old cell in kPlain mode),
  // with no merge passes. Readers pick the value up via scan().
  Coro<void> post(Ctx ctx, Value v) {
    const int p = ctx.pid();
    auto& cache = caches_[static_cast<std::size_t>(p)]->row;
    Value acc = std::move(v);
    if (mode_ == ScanMode::kPlain) {
      Value old0 = co_await ctx.read(reg(p, 0));
      acc = L::join(std::move(acc), old0);
    } else {
      acc = L::join(std::move(acc), cache[0]);
    }
    cache[0] = acc;
    co_await ctx.write(reg(p, 0), std::move(acc));
  }

  // Test/debug access to the underlying register matrix.
  const typename B::template Reg<Value>& register_at(int p, int i) const {
    return reg(p, i);
  }

 private:
  // Each process's cache row lives on its own cache lines (matters for the
  // rt backend; harmless in the simulator).
  struct alignas(64) Cache {
    std::vector<Value> row;
  };

  typename B::template Reg<Value>& reg(int p, int i) const {
    APRAM_CHECK(p >= 0 && p < n_ && i >= 0 && i <= n_ + 1);
    return *regs_[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
  }

  int n_;
  ScanMode mode_;
  // [n][n+2]; cache_[p] mirrors row p, coherent because p is its only writer.
  std::vector<std::vector<typename B::template Reg<Value>*>> regs_;
  std::vector<std::unique_ptr<Cache>> caches_;
};

}  // namespace snapshot

// Simulator instantiation under the historical name and constructor
// signature (World& + register-name prefix). Forwarding methods hand back
// the impl's SimCoro directly.
template <Semilattice L>
class LatticeScanSim {
 public:
  using Value = typename L::Value;

  LatticeScanSim(sim::World& world, int num_procs, const std::string& name,
                 ScanMode mode = ScanMode::kOptimized)
      : mem_(world, name), impl_(mem_, num_procs, mode) {}

  int num_procs() const { return impl_.num_procs(); }
  ScanMode mode() const { return impl_.mode(); }

  sim::SimCoro<Value> scan(sim::Context ctx, Value v) {
    return impl_.scan(ctx, std::move(v));
  }
  sim::SimCoro<void> write_l(sim::Context ctx, Value v) {
    return impl_.write_l(ctx, std::move(v));
  }
  sim::SimCoro<Value> read_max(sim::Context ctx) {
    return impl_.read_max(ctx);
  }
  sim::SimCoro<void> post(sim::Context ctx, Value v) {
    return impl_.post(ctx, std::move(v));
  }

  const sim::Register<Value>& register_at(int p, int i) const {
    return impl_.register_at(p, i);
  }

 private:
  api::SimBackend::Mem mem_;
  snapshot::LatticeScan<api::SimBackend, L> impl_;
};

}  // namespace apram
