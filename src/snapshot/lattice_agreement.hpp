// Lattice agreement (§2; Attiya, Herlihy & Rachman [8]).
//
// The one-shot lattice agreement task: each process proposes a lattice value
// x_i and must learn a value y_i such that
//
//   (LA1)  x_i ≤ y_i                      (own proposal included)
//   (LA2)  y_i ≤ ⋁_j x_j                  (nothing invented)
//   (LA3)  all learned values are pairwise comparable (a chain)
//
// The paper's §2 notes that this task is "closely related to the semilattice
// construction we use in Section 6": the Figure 5 Scan *solves* lattice
// agreement directly — Scan(P, x) returns a join that includes x (LA1), is a
// join of proposals only (LA2), and is comparable to every other Scan return
// by Lemma 32 (LA3). This adapter packages that as the task API; the reverse
// direction (fast snapshots *from* lattice agreement, Attiya–Rachman's
// O(n log n)) is how the field later beat the O(n²) scan.
#pragma once

#include <string>

#include "snapshot/lattice_scan.hpp"

namespace apram {

template <Semilattice L>
class LatticeAgreementSim {
 public:
  using Value = typename L::Value;

  LatticeAgreementSim(sim::World& world, int num_procs,
                      const std::string& name = "la",
                      ScanMode mode = ScanMode::kOptimized)
      : scan_(world, num_procs, name, mode) {}

  int num_procs() const { return scan_.num_procs(); }

  // One-shot per process: propose x, learn a chain value covering it.
  // (Repeated calls are harmless — they behave like proposing again and
  // learn a larger value — but the task is specified one-shot.)
  sim::SimCoro<Value> propose(sim::Context ctx, Value x) {
    Value learned = co_await scan_.scan(ctx, std::move(x));
    co_return learned;
  }

  LatticeScanSim<L>& underlying_scan() { return scan_; }

 private:
  LatticeScanSim<L> scan_;
};

}  // namespace apram
