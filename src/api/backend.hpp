// apram::api — the register-backend concept.
//
// Every algorithm in this library runs in two worlds: the single-threaded
// asynchronous-PRAM simulator (exact step counts, schedule exploration,
// crash injection) and the real-thread runtime (std::atomic registers,
// genuine parallelism). Historically each algorithm was written twice, once
// per world. A *backend* abstracts the difference so the algorithm is a
// single coroutine template:
//
//   template <class B, Semilattice L>
//   class LatticeScan {
//     typename B::template Coro<Value> scan(typename B::Ctx ctx, Value v) {
//       Value got = co_await ctx.read(reg);
//       ...
//       co_await ctx.write(reg, acc);
//     }
//   };
//
// A backend B supplies:
//
//   B::Ctx               — per-process handle: pid(), and awaitable factories
//                          read(reg) / write(reg, v) / cas(casreg, exp, des).
//   B::Mem               — register factory/owner: make<T>(name, init, writer)
//                          and make_cas<T>(name, init), returning references
//                          stable for the Mem's lifetime.
//   B::Reg<T>            — single-writer multi-reader register handle.
//   B::CasReg<T>         — multi-writer register with compare-and-swap.
//   B::Coro<T>           — the coroutine return type algorithms use.
//
// The two implementations:
//
//   SimBackend (api/sim_backend.hpp) — awaiters suspend; each resumption is
//   one atomic step granted by the Scheduler. Coro = sim::SimCoro.
//
//   RtBackend (api/rt_backend.hpp) — awaiters are always ready; the access
//   happens inline and the coroutine never suspends. Coro = EagerCoro, which
//   starts eagerly and is drained with .get().
//
// Semantics both backends guarantee per access: reads/writes of a Reg<T> are
// atomic (linearizable) register operations; cas() on a CasReg<T> is a
// single atomic step comparing with T's operator== — which must identify
// distinct writes for ABA-freedom (see farray/farray.hpp's Stamped<T>).
//
// Coroutine style rule (GCC 12): every co_await sits alone in its own
// statement — never inside a conditional expression or call argument.
#pragma once

#include <concepts>
#include <string>

namespace apram::api {

// B can host an algorithm over plain read/write registers of value type T.
template <class B, class T>
concept BackendFor = requires(typename B::Mem& mem,
                              typename B::template Reg<T>& reg,
                              const typename B::Ctx& ctx, std::string name,
                              T v, int writer) {
  { ctx.pid() } -> std::convertible_to<int>;
  {
    mem.template make<T>(name, v, writer)
  } -> std::same_as<typename B::template Reg<T>&>;
  ctx.read(reg);
  ctx.write(reg, v);
};

// B additionally supports compare-and-swap registers of value type T.
template <class B, class T>
concept CasBackendFor =
    BackendFor<B, T> && requires(typename B::Mem& mem,
                                 typename B::template CasReg<T>& reg,
                                 const typename B::Ctx& ctx, std::string name,
                                 T v) {
      {
        mem.template make_cas<T>(name, v)
      } -> std::same_as<typename B::template CasReg<T>&>;
      ctx.cas(reg, v, v);
    };

}  // namespace apram::api
