// SimBackend — the asynchronous-PRAM simulator as a register backend.
//
// Thin glue: Ctx is sim::Context (whose read/write/cas awaiters suspend the
// process for one scheduler-granted step each), Coro is sim::SimCoro
// (symmetric-transfer subcoroutines), and Mem scopes register creation in a
// World under a name prefix, so a structure's registers appear as
// "<prefix>.<name>" in traces and explorer output.
#pragma once

#include <string>
#include <utility>

#include "api/backend.hpp"
#include "sim/coro.hpp"
#include "sim/register.hpp"
#include "sim/world.hpp"

namespace apram::api {

struct SimBackend {
  using Ctx = sim::Context;
  template <class T>
  using Reg = sim::Register<T>;
  template <class T>
  using CasReg = sim::Register<T>;
  template <class T>
  using Coro = sim::SimCoro<T>;

  class Mem {
   public:
    Mem(sim::World& world, std::string prefix)
        : world_(&world), prefix_(std::move(prefix)) {}

    sim::World& world() const { return *world_; }
    int num_procs() const { return world_->num_procs(); }

    template <class T>
    Reg<T>& make(const std::string& name, T initial,
                 int writer = sim::kAnyWriter) {
      return world_->make_register<T>(prefix_ + "." + name,
                                      std::move(initial), writer);
    }

    // CAS registers are multi-writer by nature (any process may swing them).
    template <class T>
    CasReg<T>& make_cas(const std::string& name, T initial) {
      return world_->make_register<T>(prefix_ + "." + name,
                                      std::move(initial), sim::kAnyWriter);
    }

   private:
    sim::World* world_;
    std::string prefix_;
  };
};

static_assert(CasBackendFor<SimBackend, int>);

}  // namespace apram::api
