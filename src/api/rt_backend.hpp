// RtBackend — real threads as a register backend.
//
// The inverse of SimBackend: awaiters never suspend. Each Ctx accessor
// performs the register operation inline (the hardware, not a Scheduler,
// interleaves processes) and hands the result to an always-ready awaiter, so
// an algorithm coroutine instantiated with this backend runs synchronously
// to completion — EagerCoro (see api/eager_coro.hpp) is built around exactly
// that guarantee, and rt convenience wrappers drain it with .get().
//
// Mem owns the registers (type-erased holders keep names and creation-order
// object ids) and is the single attach point for observability and fault
// injection: attach_obs() instruments every register created SO FAR with
// aggregate counters "rt.<name>.reads" / ".writes" / ".cas" plus optional
// trace events, mirroring the sim World's attach_metrics shape; a CAS is
// counted separately in ".cas" (one atomic step — add it to ".writes" when
// comparing against sim StepCounts, where a CAS counts as one write).
// Attach after construction, before concurrent use.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "api/eager_coro.hpp"
#include "fault/rt_inject.hpp"
#include "obs/metrics.hpp"
#include "obs/rt_probe.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rt/register.hpp"
#include "util/assert.hpp"

namespace apram::api {

namespace detail {

template <class T>
struct ReadyAwaiter {
  T value;
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() { return std::move(value); }
};

struct ReadyVoidAwaiter {
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

}  // namespace detail

struct RtBackend {
  template <class T>
  using Reg = rt::SWMRRegister<T>;
  template <class T>
  using CasReg = rt::CASValueRegister<T>;
  template <class T>
  using Coro = EagerCoro<T>;

  class Ctx {
   public:
    explicit Ctx(int pid) : pid_(pid) {}

    int pid() const { return pid_; }

    template <class T>
    auto read(const rt::SWMRRegister<T>& reg) const {
      return detail::ReadyAwaiter<T>{reg.read()};
    }

    template <class T>
    auto read(const rt::CASValueRegister<T>& reg) const {
      return detail::ReadyAwaiter<T>{reg.read()};
    }

    // Single-writer discipline is by convention here (the sim backend
    // enforces it and aborts; running the same algorithm there first is the
    // cheap way to check).
    template <class T>
    auto write(rt::SWMRRegister<T>& reg, T value) const {
      reg.write(std::move(value));
      return detail::ReadyVoidAwaiter{};
    }

    template <class T>
    auto cas(rt::CASValueRegister<T>& reg, T expected, T desired) const {
      const bool ok =
          reg.compare_exchange(pid_, expected, std::move(desired));
      return detail::ReadyAwaiter<bool>{ok};
    }

    // Operation-span markers (obs/span.hpp), forwarded to the calling
    // thread's ambient span state (installed by rt::parallel_run). No-ops —
    // one TLS load and a branch — without an ambient tracer. Same explicit
    // begin/end contract as sim::Context.
    void op_begin(obs::OpKind kind) const { obs::rt_op_begin(kind); }
    void op_end(obs::OpKind kind) const { obs::rt_op_end(kind); }
    void op_phase(obs::Phase phase, int index = -1) const {
      obs::rt_op_phase(phase, index);
    }
    void op_help(int object) const { obs::rt_op_help(object); }

   private:
    int pid_;
  };

  class Mem {
   public:
    explicit Mem(int num_procs) : num_procs_(num_procs) {
      APRAM_CHECK(num_procs >= 1);
    }

    int num_procs() const { return num_procs_; }

    template <class T>
    Reg<T>& make(const std::string& name, T initial, int /*writer*/ = -1) {
      auto h = std::make_unique<Holder<Reg<T>>>(name, std::move(initial));
      Reg<T>& reg = h->reg;
      holders_.push_back(std::move(h));
      return reg;
    }

    template <class T>
    CasReg<T>& make_cas(const std::string& name, T initial) {
      auto h = std::make_unique<Holder<CasReg<T>>>(name, num_procs_,
                                                   std::move(initial));
      CasReg<T>& reg = h->reg;
      holders_.push_back(std::move(h));
      return reg;
    }

    // Instruments every register created so far: aggregate counters
    // "rt.<name>.reads" / ".writes" / ".cas" / ".cas_fail" (lost CASes) in
    // `registry`, plus per-access trace events (object id = creation order)
    // when `tracer` is non-null. Attach before concurrent use;
    // registry/tracer must outlive this Mem.
    void attach_obs(obs::Registry& registry, const std::string& name,
                    obs::Tracer* tracer = nullptr) {
      obs::Counter* reads = &registry.counter("rt." + name + ".reads");
      obs::Counter* writes = &registry.counter("rt." + name + ".writes");
      obs::Counter* cas = &registry.counter("rt." + name + ".cas");
      obs::Counter* cas_fail = &registry.counter("rt." + name + ".cas_fail");
      for (std::size_t i = 0; i < holders_.size(); ++i) {
        HolderBase& h = *holders_[i];
        h.probe.reads = reads;
        h.probe.writes = writes;
        h.probe.cas_ops = cas;
        h.probe.cas_failures = cas_fail;
        h.probe.tracer = tracer;
        h.probe.object = static_cast<std::int32_t>(i);
        h.attach_probe(&h.probe);
      }
    }

    // Attaches a fault injector to every register created so far (see
    // fault/rt_inject.hpp); nullptr detaches. Attach before concurrent use.
    void attach_injector(fault::RtInjector* injector) {
      for (auto& h : holders_) h->attach_injector(injector);
    }

    // Reclamation accounting summed over every register in this Mem (exact
    // at quiescence). Under the default bounded registers live_versions()
    // is bounded by concurrent holders, not by write count; under
    // APRAM_RT_UNBOUNDED it equals the total number of versions ever
    // written — which is what makes the gauge worth watching.
    rt::reclaim::ReclaimStats reclaim_stats() const {
      rt::reclaim::ReclaimStats total;
      for (const auto& h : holders_) total += h->reclaim_stats();
      return total;
    }

    // Publishes the reclamation totals as gauges "rt.<name>.reclaim.
    // {live_versions,retired,recycled,acquire_contention}" into `registry`.
    // Call at quiescence (after joins); gauges are last-writer-wins.
    void export_reclaim_gauges(obs::Registry& registry,
                               const std::string& name) const {
      const rt::reclaim::ReclaimStats s = reclaim_stats();
      const std::string prefix = "rt." + name + ".reclaim.";
      registry.gauge(prefix + "live_versions")
          .set(static_cast<std::int64_t>(s.live_versions()));
      registry.gauge(prefix + "retired")
          .set(static_cast<std::int64_t>(s.retired));
      registry.gauge(prefix + "recycled")
          .set(static_cast<std::int64_t>(s.recycled));
      registry.gauge(prefix + "acquire_contention")
          .set(static_cast<std::int64_t>(s.acquire_contention));
    }

    std::size_t num_registers() const { return holders_.size(); }
    const std::string& register_name(std::size_t i) const {
      return holders_[i]->name;
    }

   private:
    struct HolderBase {
      explicit HolderBase(std::string n) : name(std::move(n)) {}
      virtual ~HolderBase() = default;
      virtual void attach_probe(const obs::RtProbe* p) = 0;
      virtual void attach_injector(fault::RtInjector* inj) = 0;
      virtual rt::reclaim::ReclaimStats reclaim_stats() const = 0;

      std::string name;
      obs::RtProbe probe;  // configured by attach_obs
    };

    template <class R>
    struct Holder final : HolderBase {
      template <class... Args>
      explicit Holder(std::string n, Args&&... args)
          : HolderBase(std::move(n)), reg(std::forward<Args>(args)...) {}
      void attach_probe(const obs::RtProbe* p) override {
        reg.attach_probe(p);
      }
      void attach_injector(fault::RtInjector* inj) override {
        reg.attach_injector(inj);
      }
      rt::reclaim::ReclaimStats reclaim_stats() const override {
        return reg.reclaim_stats();
      }

      R reg;
    };

    int num_procs_;
    std::vector<std::unique_ptr<HolderBase>> holders_;
  };
};

static_assert(CasBackendFor<RtBackend, int>);

}  // namespace apram::api
