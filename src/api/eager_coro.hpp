// EagerCoro — the rt backend's coroutine type.
//
// Algorithms in this library are written once as coroutine templates over a
// register backend (see api/backend.hpp). Under the simulator the backend's
// awaiters suspend at every shared-memory access and the Scheduler drives
// the interleaving. Under the rt backend every awaiter is ready
// (await_ready() == true): the hardware interleaves threads, so there is
// nothing to hand control to. An EagerCoro makes that concrete — it starts
// executing at the call (initial_suspend is suspend_never) and, because no
// rt awaiter ever suspends, runs synchronously to completion. The caller
// retrieves the result with get(), or co_awaits it from an enclosing
// EagerCoro (the await is a no-op value fetch).
//
// The frame allocation this costs per call is the price of the single-source
// guarantee; rt wrappers that care can be measured against hand-written
// loops in bench_t1_throughput.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace apram::api {

template <class T>
class [[nodiscard]] EagerCoro {
 public:
  struct promise_type {
    EagerCoro get_return_object() {
      return EagerCoro{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }

    std::optional<T> value;
    std::exception_ptr exception;
  };

  explicit EagerCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  EagerCoro(EagerCoro&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  EagerCoro(const EagerCoro&) = delete;
  EagerCoro& operator=(const EagerCoro&) = delete;
  EagerCoro& operator=(EagerCoro&&) = delete;
  ~EagerCoro() {
    if (handle_) handle_.destroy();
  }

  T get() {
    APRAM_CHECK_MSG(handle_ && handle_.done(),
                    "EagerCoro did not run to completion — a suspending "
                    "awaiter leaked into an rt-backend coroutine");
    return take();
  }

  // Awaitable, for composition inside other EagerCoros. The child already
  // ran at its call site, so the await never suspends.
  bool await_ready() const noexcept { return handle_ && handle_.done(); }
  void await_suspend(std::coroutine_handle<>) const {
    APRAM_CHECK_MSG(false, "co_await on an unfinished EagerCoro");
  }
  T await_resume() { return take(); }

 private:
  T take() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    APRAM_CHECK_MSG(p.value.has_value(),
                    "EagerCoro finished without a value");
    return std::move(*p.value);
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] EagerCoro<void> {
 public:
  struct promise_type {
    EagerCoro get_return_object() {
      return EagerCoro{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  explicit EagerCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  EagerCoro(EagerCoro&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  EagerCoro(const EagerCoro&) = delete;
  EagerCoro& operator=(const EagerCoro&) = delete;
  EagerCoro& operator=(EagerCoro&&) = delete;
  ~EagerCoro() {
    if (handle_) handle_.destroy();
  }

  void get() {
    APRAM_CHECK_MSG(handle_ && handle_.done(),
                    "EagerCoro did not run to completion — a suspending "
                    "awaiter leaked into an rt-backend coroutine");
    check();
  }

  bool await_ready() const noexcept { return handle_ && handle_.done(); }
  void await_suspend(std::coroutine_handle<>) const {
    APRAM_CHECK_MSG(false, "co_await on an unfinished EagerCoro");
  }
  void await_resume() { check(); }

 private:
  void check() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace apram::api
