// ∨-semilattices.
//
// Section 6 of Aspnes & Herlihy casts the atomic snapshot problem in terms
// of a join-semilattice L with a bottom element: the shared array's state is
// the join of all values ever written, and a Scan returns that join. This
// header defines the Semilattice concept used by the scan algorithm plus the
// instances the paper needs:
//
//   MaxLattice<T>          — totally ordered values under max
//   SetUnionLattice<T>     — finite sets under union
//   TaggedCell / TaggedVectorLattice — the instance from the end of §6: an
//       n-element array of tagged cells, join = element-wise max-by-tag.
//       This is what turns the lattice Scan into an atomic snapshot object.
//   PairLattice<A, B>      — product lattice (component-wise join)
//
// All lattices here are stateless types with static members so algorithm
// templates pay no storage or indirection for them.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace apram {

// A join-semilattice with bottom. Laws (checked by tests/lattice_test):
//   join is associative, commutative, idempotent
//   join(bottom(), x) == x
//   leq(a, b) <=> join(a, b) == b
// Lattices also expose eq(a, b), the equality the laws are stated over. For
// most instances it is plain ==; for TaggedVectorLattice it is mutual leq,
// because vectors differing only in trailing/⊥ cells denote the same lattice
// element (the lattice is a quotient of the representation).
template <class L>
concept Semilattice = requires(const typename L::Value& a,
                               const typename L::Value& b) {
  typename L::Value;
  { L::bottom() } -> std::same_as<typename L::Value>;
  { L::join(a, b) } -> std::same_as<typename L::Value>;
  { L::leq(a, b) } -> std::same_as<bool>;
  { L::eq(a, b) } -> std::same_as<bool>;
};

// --------------------------------------------------------------------------

template <class T>
struct MaxLattice {
  using Value = T;
  static Value bottom() { return std::numeric_limits<T>::lowest(); }
  static Value join(const Value& a, const Value& b) { return std::max(a, b); }
  static bool leq(const Value& a, const Value& b) { return a <= b; }
  static bool eq(const Value& a, const Value& b) { return a == b; }
};

template <class T>
struct SetUnionLattice {
  using Value = std::set<T>;
  static Value bottom() { return {}; }
  static Value join(const Value& a, const Value& b) {
    Value out = a;
    out.insert(b.begin(), b.end());
    return out;
  }
  static bool leq(const Value& a, const Value& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  }
  static bool eq(const Value& a, const Value& b) { return a == b; }
};

// --------------------------------------------------------------------------
// Tagged cells and vectors: the snapshot instance.
//
// Each process P owns cell P of the vector. A write by P bumps P's tag; the
// join of two vectors keeps, per cell, the value with the larger tag. Tag 0
// is the ⊥ cell ("no write yet"). Tags are unbounded, exactly as in the
// paper ("the most straightforward implementation of our scan algorithm
// uses unbounded counters").

template <class T>
struct TaggedCell {
  std::uint64_t tag = 0;
  T value{};

  friend bool operator==(const TaggedCell& a, const TaggedCell& b) {
    return a.tag == b.tag && (a.tag == 0 || a.value == b.value);
  }
};

template <class T>
struct TaggedVectorLattice {
  using Cell = TaggedCell<T>;
  using Value = std::vector<Cell>;

  // The empty vector acts as ⊥ of any width; join widens as needed so the
  // lattice laws hold for mixed widths.
  static Value bottom() { return {}; }

  static Value join(const Value& a, const Value& b) {
    Value out(std::max(a.size(), b.size()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      const Cell* best = nullptr;
      if (i < a.size()) best = &a[i];
      if (i < b.size() && (best == nullptr || b[i].tag > best->tag)) {
        best = &b[i];
      }
      if (best != nullptr) out[i] = *best;
    }
    return out;
  }

  static bool leq(const Value& a, const Value& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].tag == 0) continue;
      if (i >= b.size() || a[i].tag > b[i].tag) return false;
    }
    return true;
  }

  static bool eq(const Value& a, const Value& b) {
    return leq(a, b) && leq(b, a);
  }

  // Convenience: a vector that is ⊥ except for cell `pid`.
  static Value singleton(std::size_t n, std::size_t pid, std::uint64_t tag,
                         T value) {
    APRAM_CHECK(pid < n);
    Value out(n);
    out[pid] = Cell{tag, std::move(value)};
    return out;
  }
};

// --------------------------------------------------------------------------
// Vector clocks: per-process event counters under component-wise max. The
// lattice order is exactly the happened-before partial order on cuts, which
// makes this the natural payload for causality tracking on top of the scan.

struct VectorClockLattice {
  using Value = std::vector<std::uint64_t>;

  static Value bottom() { return {}; }

  static Value join(const Value& a, const Value& b) {
    Value out(std::max(a.size(), b.size()), 0);
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
    for (std::size_t i = 0; i < b.size(); ++i) out[i] = std::max(out[i], b[i]);
    return out;
  }

  static bool leq(const Value& a, const Value& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0) continue;
      if (i >= b.size() || a[i] > b[i]) return false;
    }
    return true;
  }

  static bool eq(const Value& a, const Value& b) {
    return leq(a, b) && leq(b, a);
  }

  // The clock with component `pid` set to `count`.
  static Value tick(std::size_t n, std::size_t pid, std::uint64_t count) {
    Value v(n, 0);
    v[pid] = count;
    return v;
  }
};

// --------------------------------------------------------------------------

template <class A, class B>
struct PairLattice {
  using Value = std::pair<typename A::Value, typename B::Value>;
  static Value bottom() { return {A::bottom(), B::bottom()}; }
  static Value join(const Value& a, const Value& b) {
    return {A::join(a.first, b.first), B::join(a.second, b.second)};
  }
  static bool leq(const Value& a, const Value& b) {
    return A::leq(a.first, b.first) && B::leq(a.second, b.second);
  }
  static bool eq(const Value& a, const Value& b) {
    return A::eq(a.first, b.first) && B::eq(a.second, b.second);
  }
};

static_assert(Semilattice<MaxLattice<std::int64_t>>);
static_assert(Semilattice<SetUnionLattice<int>>);
static_assert(Semilattice<TaggedVectorLattice<int>>);
static_assert(Semilattice<VectorClockLattice>);
static_assert(Semilattice<PairLattice<MaxLattice<int>, SetUnionLattice<int>>>);

}  // namespace apram
