#include "lattice/lattice.hpp"

// Header-only module; anchor translation unit.
