// apram::universal2 — normalized counter representation.
//
// The flagship CounterSpec (§5.1) as a normalized rep: the whole state
// lives in ONE stamped CAS cell that embeds, next to the value, an
// applied-table — per process, the opseq of its latest applied mutation and
// that mutation's response. The table is the persistent evidence the
// wrap-up needs: "did operation (pid, opseq) take effect?" is decidable
// forever as applied[pid] >= opseq (opseqs are per-process increasing, and
// a process starts opseq k+1 only after k completed, so the table entry for
// an in-flight op is never overwritten).
//
// Costs: fast-path mutation = 1 read + 1 CAS; read = 1 read (prepare
// resolves it — reads linearize at the single cell read). Contrast with
// the paper construction's n²−1 reads + n+1 writes per op (§6.2) — the gap
// bench_e6 measures.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "objects/specs.hpp"
#include "universal2/normalized.hpp"
#include "util/assert.hpp"

namespace apram::universal2 {

template <class B>
class CounterRep {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using Invocation = CounterSpec::Invocation;
  using Response = CounterSpec::Response;

  struct Cell {
    std::uint64_t seq = 0;  // == compares this alone (ABA-free value CAS)
    std::int64_t value = 0;
    std::vector<std::uint64_t> applied;  // [n] latest applied opseq per pid
    std::vector<std::int64_t> resp;      // [n] that operation's response

    friend bool operator==(const Cell& a, const Cell& b) {
      return a.seq == b.seq;
    }
  };

  struct Prep {
    bool done = false;
    Response resp = 0;
    Cell expected{};  // the decision CAS (unused when done)
    Cell desired{};
  };

  static obs::OpKind op_kind(const Invocation&) {
    return obs::OpKind::kU2Execute;
  }
  static bool read_only(const Invocation& inv) {
    return inv.kind == CounterSpec::Kind::kRead;
  }

  CounterRep(typename B::Mem& mem, int num_procs, const std::string& name)
      : n_(num_procs) {
    APRAM_CHECK(num_procs >= 1);
    Cell init;
    init.applied.assign(static_cast<std::size_t>(n_), 0);
    init.resp.assign(static_cast<std::size_t>(n_), 0);
    cell_ = &mem.template make_cas<Cell>(name + ".cell", std::move(init));
  }

  int num_procs() const { return n_; }

  Coro<Prep> prepare(Ctx ctx, OpId id, const Invocation& inv) {
    (void)ctx;
    Cell cur = co_await ctx.read(*cell_);
    const auto pid = static_cast<std::size_t>(id.pid);
    Prep p;
    if (cur.applied[pid] >= id.opseq) {  // already applied by a helper
      p.done = true;
      p.resp = cur.resp[pid];
      co_return p;
    }
    if (inv.kind == CounterSpec::Kind::kRead) {
      p.done = true;
      p.resp = cur.value;  // linearizes at the cell read
      co_return p;
    }
    auto [next_value, resp] = CounterSpec::apply(cur.value, inv);
    p.expected = cur;
    p.desired = std::move(cur);
    p.desired.seq = p.expected.seq + 1;
    p.desired.value = next_value;
    p.desired.applied[pid] = id.opseq;
    p.desired.resp[pid] = resp;
    co_return p;
  }

  Coro<Outcome<Response>> attempt(Ctx ctx, OpId id, const Invocation& inv,
                                  const Prep& prep) {
    (void)inv;
    const auto pid = static_cast<std::size_t>(id.pid);
    bool won = co_await ctx.cas(*cell_, prep.expected, prep.desired);
    if (won) {
      co_return Outcome<Response>{true, prep.desired.resp[pid]};
    }
    // The CAS lost — but a rival helper may have installed this very prep
    // (slow path) or the op may have applied via an earlier candidate; the
    // applied-table answers definitively.
    Cell cur = co_await ctx.read(*cell_);
    if (cur.applied[pid] >= id.opseq) {
      co_return Outcome<Response>{true, cur.resp[pid]};
    }
    co_return Outcome<Response>{false, 0};
  }

  const typename B::template CasReg<Cell>& cell_register() const {
    return *cell_;
  }

 private:
  int n_;
  typename B::template CasReg<Cell>* cell_ = nullptr;
};

}  // namespace apram::universal2

#include "universal2/wait_free_sim.hpp"

namespace apram::universal2 {

// Convenience facade: a wait-free counter over any backend.
template <class B>
class Counter2 {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using Sim = WaitFreeSim<B, CounterRep<B>>;
  using Config = typename Sim::Config;

  Counter2(typename B::Mem& mem, int num_procs, const std::string& name,
           Config cfg = {})
      : rep_(mem, num_procs, name), sim_(mem, num_procs, rep_, name, cfg) {}

  Coro<std::int64_t> inc(Ctx ctx, std::int64_t by = 1) {
    return sim_.execute(ctx, CounterSpec::inc(by));
  }
  Coro<std::int64_t> dec(Ctx ctx, std::int64_t by = 1) {
    return sim_.execute(ctx, CounterSpec::dec(by));
  }
  Coro<std::int64_t> reset(Ctx ctx, std::int64_t to = 0) {
    return sim_.execute(ctx, CounterSpec::reset(to));
  }
  Coro<std::int64_t> read(Ctx ctx) {
    return sim_.execute(ctx, CounterSpec::read());
  }

  CounterRep<B>& rep() { return rep_; }
  const CounterRep<B>& rep() const { return rep_; }
  Sim& sim() { return sim_; }
  const Sim& sim() const { return sim_; }

 private:
  CounterRep<B> rep_;
  Sim sim_;
};

}  // namespace apram::universal2
