// apram::universal2 — a bounded wait-free help queue.
//
// The queue that makes the slow path wait-free (cf. Telamon's HelpQueue /
// Timnat–Petrank's help array). Capacity is exactly n — each process owns
// ONE announce cell and has at most one pending operation — so "full queue"
// backpressure cannot arise from the queue itself: a process that wants to
// announce a second operation must first complete (and clear) its current
// one, which the simulator's execute() loop guarantees.
//
// Shape: n CAS-installed cells, one per process. Every mutation of cell p
// is a CAS by p itself (stamped values, owner-only → the CAS cannot lose),
// which keeps each queue operation a bounded number of accesses:
//
//   enqueue  — n reads (bakery scan for a fresh FIFO stamp) + 1 CAS
//   peek     — n reads, returns the active announce with the minimum
//              (stamp, pid) — the FIFO head every helper converges on
//   dequeue  — 1 read + 1 CAS (deactivate own cell)
//
// FIFO stamps are bakery-style: enqueue picks max(active stamps)+1. Two
// concurrent enqueuers may pick equal stamps; the (stamp, pid) tie-break
// keeps the head unique. Stamps taken while an op with a larger stamp is
// already announced are impossible (the scan reads all cells), so an
// announced op is overtaken at most once per concurrent enqueuer — the
// bounded-overtaking property the help-bound argument uses.
//
// Cells follow the Stamped idiom: `seq` increases on every install and
// operator== compares seq alone, so a CAS against a stale read fails.
// A process that crashes mid-enqueue (after the bakery scan, before the
// CAS) leaves the queue untouched; after the CAS its announce stays active
// forever and helpers still complete the operation — the crash cases
// tests/universal2_fault_test.cpp sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "obs/contention.hpp"
#include "util/assert.hpp"

namespace apram::universal2 {

template <class B, class Op>
  requires std::is_default_constructible_v<Op> &&
           std::is_copy_constructible_v<Op>
class HelpQueue {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;

  struct Cell {
    std::uint64_t seq = 0;  // install counter; == compares this alone
    bool active = false;
    std::uint64_t stamp = 0;  // FIFO priority (bakery number)
    std::uint64_t opseq = 0;  // which op of the owner is announced
    Op op{};

    friend bool operator==(const Cell& a, const Cell& b) {
      return a.seq == b.seq;
    }
  };

  // What peek() hands to helpers.
  struct Head {
    int pid = -1;
    std::uint64_t opseq = 0;
    std::uint64_t stamp = 0;
    Op op{};
  };

  HelpQueue(typename B::Mem& mem, int num_procs, const std::string& name)
      : n_(num_procs), contention_(std::max(1, num_procs), num_procs) {
    APRAM_CHECK(num_procs >= 1);
    cells_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      cells_.push_back(&mem.template make_cas<Cell>(
          name + ".cell[" + std::to_string(p) + "]", Cell{}));
    }
  }

  int num_procs() const { return n_; }

  // Announce (opseq, op) in the caller's cell. The caller must not already
  // have an active announce (capacity: one pending op per process).
  Coro<void> enqueue(Ctx ctx, std::uint64_t opseq, Op op) {
    const int p = ctx.pid();
    std::uint64_t max_stamp = 0;
    for (int q = 0; q < n_; ++q) {
      Cell c = co_await ctx.read(cell(q));
      if (c.active && c.stamp > max_stamp) max_stamp = c.stamp;
    }
    Cell cur = co_await ctx.read(cell(p));
    APRAM_CHECK_MSG(!cur.active, "help queue: second announce while pending");
    Cell next;
    next.seq = cur.seq + 1;
    next.active = true;
    next.stamp = max_stamp + 1;
    next.opseq = opseq;
    next.op = std::move(op);
    bool ok = co_await ctx.cas(cell(p), cur, next);
    APRAM_CHECK_MSG(ok, "help queue: owner-only install lost a CAS");
    // Owner CAS: always first-try (a lost one is a broken invariant, so a
    // nonzero exported cas_fail_rate here can never legitimately appear).
    contention_.on_level_walk(p, p, obs::WalkOutcome::kFirstRefresh);
  }

  // Retract the caller's announce (call after its operation is complete).
  Coro<void> dequeue(Ctx ctx) {
    const int p = ctx.pid();
    Cell cur = co_await ctx.read(cell(p));
    APRAM_CHECK_MSG(cur.active, "help queue: dequeue without an announce");
    Cell next;
    next.seq = cur.seq + 1;
    next.active = false;
    bool ok = co_await ctx.cas(cell(p), cur, next);
    APRAM_CHECK_MSG(ok, "help queue: owner-only retract lost a CAS");
    contention_.on_level_walk(p, p, obs::WalkOutcome::kFirstRefresh);
  }

  // The FIFO head: the active announce with minimum (stamp, pid), or
  // nullopt when the queue is empty. Concurrent helpers may see different
  // heads (announces come and go during the scan); each helps what it saw —
  // correctness never depends on agreement, only the help bound does, and
  // that through bounded overtaking.
  Coro<std::optional<Head>> peek(Ctx ctx) {
    std::optional<Head> best;
    for (int q = 0; q < n_; ++q) {
      Cell c = co_await ctx.read(cell(q));
      if (!c.active) continue;
      const bool better =
          !best.has_value() || c.stamp < best->stamp ||
          (c.stamp == best->stamp && q < best->pid);
      if (better) best = Head{q, c.opseq, c.stamp, c.op};
    }
    co_return best;
  }

  // Test/debug access.
  const typename B::template CasReg<Cell>& cell_at(int p) const {
    return cell(p);
  }

  // Per-cell announce/retract telemetry (cell p = process p's announce
  // cell; owner-only CAS never loses, so cas_fail_rate here is pinned at 0
  // — a nonzero value is a broken invariant, which obs_test asserts).
  const obs::NodeContention& contention() const { return contention_; }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    contention_.export_gauges(registry, prefix);
  }

 private:
  typename B::template CasReg<Cell>& cell(int q) const {
    APRAM_CHECK(q >= 0 && q < n_);
    return *cells_[static_cast<std::size_t>(q)];
  }

  int n_;
  std::vector<typename B::template CasReg<Cell>*> cells_;
  mutable obs::NodeContention contention_;  // cell p = announce cell p
};

}  // namespace apram::universal2
