// apram::universal2 — the normalized fast-path/slow-path wait-free
// simulator (Timnat–Petrank shape, written once over the register-backend
// concept so one source runs on sim and rt).
//
// execute(P, inv):
//
//   0. HELP-FIRST — every help_period-th operation peeks the help queue and
//      drives the FIFO head to completion before doing its own work, so an
//      announced operation is helped even by processes that never leave the
//      fast path themselves.
//   1. FAST PATH — up to max_fast_attempts rounds of the rep's normalized
//      steps (prepare → decision CAS → resolve), entirely private: no
//      shared announce, no state record. Uncontended cost = the rep's own
//      cost (counter: 1 read + 1 CAS) — this is what bench_e6 measures
//      against the paper construction's O(n²) scan.
//   2. SLOW PATH — publish a per-process state record (kPending), announce
//      in the bounded HelpQueue, then loop {own record done? else help the
//      FIFO head, then help OWN record}. Every process drives announced
//      records through the same state machine, so the operation completes
//      even if its owner crashes or stalls right after the announce. The
//      self-help step is what keeps the loop wait-free: announce cells are
//      owner-only, so a crashed owner's announce can sit at the queue head
//      forever with its record already kDone — helping it is a no-op, and
//      a waiter that only helped the head would spin. Driving one's own
//      record directly never depends on any other process being live.
//
// State-record machine (one CAS cell per process, Stamped: == is seq-only):
//
//   kIdle ──owner──▶ kPending ──any──▶ kCandidate ──any──▶ kDone
//                        ▲                  │ (resolve: not applied)
//                        └──────────────────┘
//   kDone ──owner──▶ kIdle  (owner collects the response, retracts announce)
//
//   kPending   : run prepare(); install its output (either a resolved
//                response → kDone, or a decision-CAS candidate).
//   kCandidate : execute the decision CAS, then resolve from persistent
//                evidence; "applied" → kDone, "definitively not" → back to
//                kPending for a fresh prepare.
//
// The LEAVE-INVARIANT makes stale helpers harmless: a record leaves
// kCandidate only after the candidate's target cell seq has advanced past
// the candidate's expected seq (a successful decision CAS advances it; a
// failed one proves it advanced). Cell seqs only grow, so a stale helper
// later executing an abandoned candidate's CAS necessarily fails — an
// operation can never take effect twice. Helpers that lose a state-record
// CAS simply re-read and continue; every transition bumps the record seq.
//
// Help bound: ctx.op_help(q) is emitted at most once per distinct helped
// process per own operation, so a complete operation span carries ≤ n−1
// kHelp events — the `u2_help=n-1` bound tools/apram-trace certifies
// offline (obs::check_u2_help_bound).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "obs/span.hpp"
#include "universal2/help_queue.hpp"
#include "universal2/normalized.hpp"
#include "util/assert.hpp"

namespace apram::universal2 {

template <class B, class R>
  requires NormalizedRepFor<R, B>
class WaitFreeSim {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using Invocation = typename R::Invocation;
  using Response = typename R::Response;
  using Queue = HelpQueue<B, Invocation>;

  struct Config {
    // Fast-path rounds before an op announces itself. 0 forces every
    // mutating op onto the slow path (tests use this to exercise helping).
    int max_fast_attempts = 3;
    // Peek the queue head every k-th operation; 0 disables the periodic
    // check (slow-path waiters still help — only fast-path ops stop
    // looking, which forfeits the wait-freedom guarantee; test-only).
    int help_period = 4;
  };

  enum class Stage : std::uint8_t { kIdle, kPending, kCandidate, kDone };

  struct Rec {
    std::uint64_t seq = 0;  // transition counter; == compares this alone
    std::uint64_t opseq = 0;
    Stage stage = Stage::kIdle;
    typename R::Prep prep{};  // valid at kCandidate
    Response resp{};          // valid at kDone

    friend bool operator==(const Rec& a, const Rec& b) {
      return a.seq == b.seq;
    }
  };

  // `rep` must outlive this simulator; its registers live in the same Mem.
  WaitFreeSim(typename B::Mem& mem, int num_procs, R& rep,
              const std::string& name, Config cfg = {})
      : n_(num_procs),
        cfg_(cfg),
        rep_(&rep),
        queue_(mem, num_procs, name),
        helps_(num_procs) {
    APRAM_CHECK(num_procs >= 1);
    APRAM_CHECK(cfg.max_fast_attempts >= 0);
    states_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      states_.push_back(&mem.template make_cas<Rec>(
          name + ".state[" + std::to_string(p) + "]", Rec{}));
    }
    locals_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      locals_.push_back(std::make_unique<Local>());
      locals_.back()->help_epoch.assign(static_cast<std::size_t>(n_), 0);
    }
  }

  int num_procs() const { return n_; }
  const Config& config() const { return cfg_; }
  R& rep() { return *rep_; }
  Queue& queue() { return queue_; }

  Coro<Response> execute(Ctx ctx, Invocation inv) {
    const int p = ctx.pid();
    Local& lo = local(p);
    const std::uint64_t opseq = ++lo.next_opseq;
    const OpId id{p, opseq};
    const obs::OpKind kind = R::op_kind(inv);
    ctx.op_begin(kind);
    ++lo.op_epoch;

    // 0. Help-first discipline.
    if (cfg_.help_period > 0 &&
        lo.ops_started++ % static_cast<std::uint64_t>(cfg_.help_period) ==
            0) {
      std::optional<typename Queue::Head> head = co_await queue_.peek(ctx);
      if (head.has_value()) {
        co_await help_record(ctx, *head);
      }
    }

    // 1. Fast path.
    for (int attempt = 0;; ++attempt) {
      if (!R::read_only(inv) && attempt >= cfg_.max_fast_attempts) break;
      ctx.op_phase(obs::Phase::kFastPath, attempt);
      typename R::Prep prep = co_await rep_->prepare(ctx, id, inv);
      if (prep.done) {
        ctx.op_end(kind);
        co_return prep.resp;
      }
      APRAM_CHECK_MSG(!R::read_only(inv),
                      "read-only prepare must resolve the operation");
      Outcome<Response> out = co_await rep_->attempt(ctx, id, inv, prep);
      if (out.decided) {
        ctx.op_end(kind);
        co_return out.resp;
      }
    }

    // 2. Slow path: publish the record, announce, help until done.
    ++lo.slow_entries;
    ctx.op_phase(obs::Phase::kSlowPath);
    Rec cur = co_await ctx.read(state(p));
    APRAM_CHECK_MSG(cur.stage == Stage::kIdle,
                    "state record not retired before the next op");
    Rec pend;
    pend.seq = cur.seq + 1;
    pend.opseq = opseq;
    pend.stage = Stage::kPending;
    bool installed = co_await ctx.cas(state(p), cur, pend);
    APRAM_CHECK_MSG(installed, "state record is owner-installed from kIdle");
    co_await queue_.enqueue(ctx, opseq, inv);
    for (;;) {
      Rec st = co_await ctx.read(state(p));
      if (st.stage == Stage::kDone) {
        APRAM_CHECK(st.opseq == opseq);
        Response resp = st.resp;
        Rec idle;
        idle.seq = st.seq + 1;
        idle.opseq = opseq;
        idle.stage = Stage::kIdle;
        bool retired = co_await ctx.cas(state(p), st, idle);
        APRAM_CHECK_MSG(retired, "helpers never advance a kDone record");
        co_await queue_.dequeue(ctx);
        ctx.op_end(kind);
        co_return resp;
      }
      std::optional<typename Queue::Head> head = co_await queue_.peek(ctx);
      APRAM_CHECK_MSG(head.has_value(),
                      "own announce is active while the op is pending");
      co_await help_record(ctx, *head);
      if (head->pid != p) {
        // Self-reliance: the head may be a dead announce (crashed owner,
        // record kDone but never retracted) — drive our own record too.
        typename Queue::Head own;
        own.pid = p;
        own.opseq = opseq;
        own.op = inv;
        co_await help_record(ctx, own);
      }
    }
  }

  // --- Introspection for tests and benches --------------------------------

  std::uint64_t slow_path_entries(int p) const { return local(p).slow_entries; }
  std::uint64_t ops_started(int p) const { return local(p).ops_started; }
  const typename B::template CasReg<Rec>& state_at(int p) const {
    return state(p);
  }

  // Helps given/received per pid (same dedup as the kHelp trace events: at
  // most one per (own op, helped pid)). Exports `<prefix>.help_given` /
  // `.help_received` totals + per-pid gauges; no-op when compiled out.
  const obs::HelpTally& help_tally() const { return helps_; }
  void export_contention_gauges(obs::Registry& registry,
                                const std::string& prefix) const {
    helps_.export_gauges(registry, prefix);
    queue_.export_contention_gauges(registry, prefix + ".queue");
  }

 private:
  struct alignas(64) Local {
    std::uint64_t next_opseq = 0;
    std::uint64_t ops_started = 0;
    std::uint64_t slow_entries = 0;
    std::uint64_t op_epoch = 0;  // bumped per own op; dedups kHelp emission
    std::vector<std::uint64_t> help_epoch;  // [n] last epoch that helped q
  };

  // Drives q's announced record until it is kDone (or retired / a different
  // incarnation). Lost record CASes re-read and continue; every iteration
  // either advances the record or observes someone else's advance.
  Coro<void> help_record(Ctx ctx, typename Queue::Head h) {
    const int p = ctx.pid();
    Local& lo = local(p);
    if (h.pid != p && lo.help_epoch[static_cast<std::size_t>(h.pid)] !=
                          lo.op_epoch) {
      lo.help_epoch[static_cast<std::size_t>(h.pid)] = lo.op_epoch;
      ctx.op_help(h.pid);
      helps_.on_help(p, h.pid);  // local telemetry; zero model accesses
    }
    const OpId id{h.pid, h.opseq};
    for (;;) {
      Rec st = co_await ctx.read(state(h.pid));
      if (st.opseq != h.opseq) co_return;  // stale announce: other incarnation
      if (st.stage == Stage::kIdle || st.stage == Stage::kDone) co_return;
      if (st.stage == Stage::kPending) {
        typename R::Prep prep = co_await rep_->prepare(ctx, id, h.op);
        Rec next;
        next.seq = st.seq + 1;
        next.opseq = h.opseq;
        if (prep.done) {
          next.stage = Stage::kDone;
          next.resp = prep.resp;
        } else {
          next.stage = Stage::kCandidate;
          next.prep = prep;
        }
        bool won = co_await ctx.cas(state(h.pid), st, next);
        if (won && next.stage == Stage::kDone) co_return;
      } else {  // Stage::kCandidate
        Outcome<Response> out = co_await rep_->attempt(ctx, id, h.op, st.prep);
        Rec next;
        next.seq = st.seq + 1;
        next.opseq = h.opseq;
        if (out.decided) {
          next.stage = Stage::kDone;
          next.resp = out.resp;
        } else {
          next.stage = Stage::kPending;
        }
        bool won = co_await ctx.cas(state(h.pid), st, next);
        if (won && next.stage == Stage::kDone) co_return;
      }
    }
  }

  typename B::template CasReg<Rec>& state(int q) const {
    APRAM_CHECK(q >= 0 && q < n_);
    return *states_[static_cast<std::size_t>(q)];
  }
  Local& local(int p) const {
    APRAM_CHECK(p >= 0 && p < n_);
    return *locals_[static_cast<std::size_t>(p)];
  }

  int n_;
  Config cfg_;
  R* rep_;
  Queue queue_;
  std::vector<typename B::template CasReg<Rec>*> states_;
  std::vector<std::unique_ptr<Local>> locals_;
  mutable obs::HelpTally helps_;
};

}  // namespace apram::universal2
