// apram::universal2 — a wait-free sorted linked-list set (normalized rep).
//
// Harris-style sorted list (mark-then-unlink) recast as a NormalizedRep so
// WaitFreeSim makes it wait-free (cf. Telamon's NormalizedLinkedList):
//
//   * Nodes live in a bounded pool of registers, partitioned per EXECUTOR
//     process: whoever runs prepare() allocates from its own partition, so
//     the node's key register keeps the single-writer discipline even when
//     a helper prepares someone else's insert. Nodes are never recycled
//     within a run (a removed node's mark is the permanent evidence the
//     wrap-up reads); size capacity_per_proc for inserts + failed attempts.
//   * A node's link is ONE stamped CAS value {seq, next, marked, owner}:
//     mark bit and successor swing together (Harris's pointer tagging),
//     seq-only equality makes every link CAS ABA-free, and the owner field
//     records WHICH operation marked the node — the remove certificate.
//   * insert(k): search; duplicate → done(false). Else allocate a FRESH
//     node X (fresh per attempt — abandoned candidates must stay forever
//     unlinkable), privately freeze X.next to the successor, and emit the
//     decision CAS pred.next: {seen} → {X}. Resolve after a lost CAS:
//     search finds X unmarked (unique-key invariant) → applied; X.next
//     advanced past the freeze (only reachable nodes get their link CASed)
//     → applied (then marked/unlinked); otherwise the lost CAS itself
//     proves pred.next moved past the candidate's expected stamp, so the
//     candidate is dead forever (leave-invariant) → definitively failed.
//   * remove(k): search; absent → done(false). Else decision CAS marks the
//     victim's link {unmarked} → {marked, owner=(pid,opseq)}. Marks are
//     permanent and a marked link is frozen (every link CAS expects an
//     unmarked stamp it read), so the resolve reads the victim's link:
//     marked with our owner id → applied; anything else → failed forever.
//   * contains(k): one read-only pass that skips marked nodes; resolves in
//     prepare() (fast-path only, never helped). Next edges always point to
//     strictly larger keys (insert splices between smaller and larger;
//     unlink shortcuts forward), so every traversal is acyclic and visits
//     at most pool-size nodes — wait-free by construction.
//   * search() physically unlinks marked nodes it passes (restarting from
//     the head when the splice CAS loses) — the only unbounded loop, and
//     exactly the one the help-queue convergence argument bounds: every
//     splice loss means another process changed the same link, i.e. made
//     progress on an operation all helpers eventually share.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "universal2/normalized.hpp"
#include "universal2/wait_free_sim.hpp"
#include "util/assert.hpp"

namespace apram::universal2 {

template <class B>
class SortedListRep {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;

  enum class OpType : std::uint8_t { kInsert, kRemove, kContains };

  struct Invocation {
    OpType op = OpType::kContains;
    std::int64_t key = 0;
  };
  using Response = std::int64_t;  // insert/remove: took effect; contains: in

  static constexpr std::int32_t kNull = -1;
  static constexpr std::int32_t kHead = -2;  // the head sentinel "cell"

  struct Link {
    std::uint64_t seq = 0;  // == compares this alone (ABA-free link CAS)
    std::int32_t next = kNull;
    bool marked = false;
    std::int32_t owner_pid = -1;     // who marked this node (remove cert)
    std::uint64_t owner_opseq = 0;

    friend bool operator==(const Link& a, const Link& b) {
      return a.seq == b.seq;
    }
  };

  struct Prep {
    bool done = false;
    Response resp = 0;
    std::int32_t cell = kNull;  // whose link the decision CAS swings
    Link expected{};
    Link desired{};
    std::int32_t node = kNull;  // insert: the freshly allocated node
    std::uint64_t node_frozen_seq = 0;  // node's link seq after the freeze
  };

  static obs::OpKind op_kind(const Invocation& inv) {
    switch (inv.op) {
      case OpType::kInsert:
        return obs::OpKind::kU2Insert;
      case OpType::kRemove:
        return obs::OpKind::kU2Remove;
      case OpType::kContains:
        return obs::OpKind::kU2Contains;
    }
    return obs::OpKind::kUser;
  }
  static bool read_only(const Invocation& inv) {
    return inv.op == OpType::kContains;
  }

  static Invocation insert(std::int64_t k) { return {OpType::kInsert, k}; }
  static Invocation remove(std::int64_t k) { return {OpType::kRemove, k}; }
  static Invocation contains(std::int64_t k) { return {OpType::kContains, k}; }

  SortedListRep(typename B::Mem& mem, int num_procs, int capacity_per_proc,
                const std::string& name)
      : n_(num_procs), cap_per_proc_(capacity_per_proc) {
    APRAM_CHECK(num_procs >= 1 && capacity_per_proc >= 1);
    head_ = &mem.template make_cas<Link>(name + ".head", Link{});
    const int cap = n_ * cap_per_proc_;
    keys_.reserve(static_cast<std::size_t>(cap));
    links_.reserve(static_cast<std::size_t>(cap));
    for (int i = 0; i < cap; ++i) {
      const int writer = i / cap_per_proc_;  // partition owner
      keys_.push_back(&mem.template make<std::int64_t>(
          name + ".key[" + std::to_string(i) + "]", 0, writer));
      links_.push_back(&mem.template make_cas<Link>(
          name + ".link[" + std::to_string(i) + "]", Link{}));
    }
    locals_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      locals_.push_back(std::make_unique<Local>());
    }
  }

  int num_procs() const { return n_; }
  int capacity_per_proc() const { return cap_per_proc_; }
  std::uint64_t allocated(int p) const {
    return locals_[static_cast<std::size_t>(p)]->next_slot;
  }

  Coro<Prep> prepare(Ctx ctx, OpId id, const Invocation& inv) {
    Prep p;
    if (inv.op == OpType::kContains) {
      Response in = co_await contains_pass(ctx, inv.key);
      p.done = true;
      p.resp = in;
      co_return p;
    }
    Search s = co_await search(ctx, inv.key);
    const bool present = s.curr != kNull && s.curr_key == inv.key;
    if (inv.op == OpType::kInsert) {
      if (present) {
        p.done = true;
        p.resp = 0;
        co_return p;
      }
      // Fresh node from the EXECUTOR's partition, initialized privately:
      // write the key, then freeze the link onto the successor seen by the
      // search. Private until (and unless) the decision CAS publishes it.
      const std::int32_t x = alloc(ctx.pid());
      co_await ctx.write(key_reg(x), inv.key);
      Link xcur = co_await ctx.read(link_reg(x));
      Link frozen;
      frozen.seq = xcur.seq + 1;
      frozen.next = s.curr;
      bool froze = co_await ctx.cas(link_reg(x), xcur, frozen);
      APRAM_CHECK_MSG(froze, "fresh node link is private until published");
      p.cell = s.pred_cell;
      p.expected = s.pred_link;
      p.desired.seq = s.pred_link.seq + 1;
      p.desired.next = x;
      p.desired.owner_pid = id.pid;
      p.desired.owner_opseq = id.opseq;
      p.node = x;
      p.node_frozen_seq = frozen.seq;
      co_return p;
    }
    // kRemove
    if (!present) {
      p.done = true;
      p.resp = 0;
      co_return p;
    }
    p.cell = s.curr;
    p.expected = s.curr_link;
    p.desired.seq = s.curr_link.seq + 1;
    p.desired.next = s.curr_link.next;
    p.desired.marked = true;
    p.desired.owner_pid = id.pid;
    p.desired.owner_opseq = id.opseq;
    co_return p;
  }

  Coro<Outcome<Response>> attempt(Ctx ctx, OpId id, const Invocation& inv,
                                  const Prep& prep) {
    bool won = co_await ctx.cas(link_at(prep.cell), prep.expected,
                                prep.desired);
    if (won) {
      co_return Outcome<Response>{true, 1};
    }
    if (inv.op == OpType::kInsert) {
      // Did X get linked anyway (a rival helper executed this candidate
      // first)? Unique-key invariant: if X is in the list unmarked, a
      // search for its key returns exactly X.
      Search s = co_await search(ctx, inv.key);
      if (s.curr == prep.node) {
        co_return Outcome<Response>{true, 1};
      }
      Link xn = co_await ctx.read(link_reg(prep.node));
      if (xn.seq > prep.node_frozen_seq) {
        // Only a reachable node's link gets CASed (mark or splice), so X
        // was linked — inserted, then already removed/unlinked.
        co_return Outcome<Response>{true, 1};
      }
      // Our CAS loss proves pred.next moved past the expected stamp, so
      // this candidate can never succeed (leave-invariant): re-prepare.
      co_return Outcome<Response>{false, 0};
    }
    // kRemove: marks are permanent and a marked link is frozen, so the
    // victim's link answers forever.
    Link yn = co_await ctx.read(link_at(prep.cell));
    if (yn.marked && yn.owner_pid == id.pid && yn.owner_opseq == id.opseq) {
      co_return Outcome<Response>{true, 1};
    }
    co_return Outcome<Response>{false, 0};
  }

  // Read-only view of the current membership (unmarked keys in order); one
  // traversal, usable on both backends. Test/judge helper.
  Coro<std::vector<std::int64_t>> snapshot_keys(Ctx ctx) {
    std::vector<std::int64_t> out;
    Link l = co_await ctx.read(*head_);
    std::int32_t curr = l.next;
    while (curr != kNull) {
      Link cl = co_await ctx.read(link_reg(curr));
      std::int64_t ck = co_await ctx.read(key_reg(curr));
      if (!cl.marked) out.push_back(ck);
      curr = cl.next;
    }
    co_return out;
  }

  // Raw register access for judges/tests (sim peek-walks, rt reads).
  const typename B::template CasReg<Link>& head_register() const {
    return *head_;
  }
  const typename B::template CasReg<Link>& link_register(int i) const {
    return link_reg(i);
  }
  const typename B::template Reg<std::int64_t>& key_register(int i) const {
    return key_reg(i);
  }

 private:
  struct alignas(64) Local {
    std::uint64_t next_slot = 0;  // within this process's partition
  };

  struct Search {
    std::int32_t pred_cell = kHead;
    Link pred_link{};
    std::int32_t curr = kNull;  // first unmarked node with key >= target
    std::int64_t curr_key = 0;
    Link curr_link{};
  };

  // Harris search: returns (pred, curr) with key(pred) < k <= key(curr),
  // splicing out marked nodes on the way (restart from the head when the
  // splice loses).
  Coro<Search> search(Ctx ctx, std::int64_t k) {
    for (;;) {
      Search s;
      s.pred_cell = kHead;
      Link hl = co_await ctx.read(*head_);
      s.pred_link = hl;
      bool splice_lost = false;
      while (!splice_lost) {
        const std::int32_t curr = s.pred_link.next;
        if (curr == kNull) {
          co_return s;
        }
        Link cl = co_await ctx.read(link_reg(curr));
        if (cl.marked) {
          Link spliced;
          spliced.seq = s.pred_link.seq + 1;
          spliced.next = cl.next;
          bool ok = co_await ctx.cas(link_at(s.pred_cell), s.pred_link,
                                     spliced);
          if (!ok) {
            splice_lost = true;  // restart from the head
            break;
          }
          s.pred_link = spliced;
          continue;
        }
        std::int64_t ck = co_await ctx.read(key_reg(curr));
        if (ck >= k) {
          s.curr = curr;
          s.curr_key = ck;
          s.curr_link = cl;
          co_return s;
        }
        s.pred_cell = curr;
        s.pred_link = cl;
      }
    }
  }

  // contains(): single pass, skip marked, no cleanup, no restarts.
  Coro<Response> contains_pass(Ctx ctx, std::int64_t k) {
    Link l = co_await ctx.read(*head_);
    std::int32_t curr = l.next;
    while (curr != kNull) {
      Link cl = co_await ctx.read(link_reg(curr));
      std::int64_t ck = co_await ctx.read(key_reg(curr));
      if (!cl.marked) {
        if (ck == k) co_return 1;
        if (ck > k) co_return 0;
      }
      curr = cl.next;
    }
    co_return 0;
  }

  std::int32_t alloc(int p) {
    Local& lo = *locals_[static_cast<std::size_t>(p)];
    APRAM_CHECK_MSG(lo.next_slot < static_cast<std::uint64_t>(cap_per_proc_),
                    "universal2 list: node pool partition exhausted");
    const std::int32_t slot = static_cast<std::int32_t>(
        static_cast<std::uint64_t>(p) *
            static_cast<std::uint64_t>(cap_per_proc_) +
        lo.next_slot);
    ++lo.next_slot;
    return slot;
  }

  typename B::template CasReg<Link>& link_at(std::int32_t cell) const {
    if (cell == kHead) return *head_;
    return link_reg(cell);
  }
  typename B::template CasReg<Link>& link_reg(std::int32_t i) const {
    APRAM_CHECK(i >= 0 &&
                i < static_cast<std::int32_t>(links_.size()));
    return *links_[static_cast<std::size_t>(i)];
  }
  typename B::template Reg<std::int64_t>& key_reg(std::int32_t i) const {
    APRAM_CHECK(i >= 0 && i < static_cast<std::int32_t>(keys_.size()));
    return *keys_[static_cast<std::size_t>(i)];
  }

  int n_;
  int cap_per_proc_;
  typename B::template CasReg<Link>* head_ = nullptr;
  std::vector<typename B::template Reg<std::int64_t>*> keys_;
  std::vector<typename B::template CasReg<Link>*> links_;
  std::vector<std::unique_ptr<Local>> locals_;
};

// Convenience facade: a wait-free sorted set over any backend.
template <class B>
class SortedSet {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;
  using Rep = SortedListRep<B>;
  using Sim = WaitFreeSim<B, Rep>;
  using Config = typename Sim::Config;

  SortedSet(typename B::Mem& mem, int num_procs, int capacity_per_proc,
            const std::string& name, Config cfg = {})
      : rep_(mem, num_procs, capacity_per_proc, name),
        sim_(mem, num_procs, rep_, name, cfg) {}

  Coro<std::int64_t> insert(Ctx ctx, std::int64_t key) {
    return sim_.execute(ctx, Rep::insert(key));
  }
  Coro<std::int64_t> remove(Ctx ctx, std::int64_t key) {
    return sim_.execute(ctx, Rep::remove(key));
  }
  Coro<std::int64_t> contains(Ctx ctx, std::int64_t key) {
    return sim_.execute(ctx, Rep::contains(key));
  }

  Rep& rep() { return rep_; }
  const Rep& rep() const { return rep_; }
  Sim& sim() { return sim_; }
  const Sim& sim() const { return sim_; }

 private:
  Rep rep_;
  Sim sim_;
};

}  // namespace apram::universal2
