// apram::universal2 — the normalized-representation concept.
//
// The paper's universal construction (core/universal.hpp) charges every
// operation the full O(n²) scan-and-agree overhead even with no contention.
// universal2 is the modern alternative (Timnat–Petrank, "A Practical
// Wait-Free Simulation for Lock-Free Data Structures", PPoPP'14): the
// operation is *normalized* into
//
//   1. a GENERATOR  — a read-only pass that either resolves the operation
//      outright or produces one decision CAS (the "CAS list" collapses to a
//      single CAS here: every client in this repo decides with one CAS),
//   2. the DECISION CAS itself, and
//   3. a WRAP-UP    — a resolve step that, given the generator's output,
//      decides from *persistent* evidence whether the decision CAS took
//      effect (possibly executed by a different process).
//
// The fast path runs 1→2→3 privately (lock-free). After K failed fast-path
// attempts the operation is published in a bounded help queue and every
// process drives it through the same three steps via a per-process state
// record (help_queue.hpp, wait_free_sim.hpp) — making the whole simulation
// wait-free.
//
// A rep R for backend B supplies:
//
//   R::Invocation  — the operation descriptor (copyable, stored in records).
//   R::Response    — the result type.
//   R::Prep        — the generator's output. Must expose `bool done` and
//                    `Response resp` (set when the generator resolved the
//                    operation without a CAS) plus whatever the rep needs to
//                    execute/resolve the decision CAS. Default-constructible
//                    and copyable (it is stored in the shared state record).
//   R::prepare(ctx, id, inv) -> Coro<Prep>
//                  — the generator. MUST NOT make the operation visible:
//                    any helper may run it concurrently for the same id, and
//                    all but one output is discarded. It may perform benign
//                    auxiliary CASes (e.g. unlinking marked nodes) and may
//                    initialize *private* memory (e.g. a fresh node), but
//                    the operation itself must take effect only through the
//                    decision CAS described by the returned Prep.
//   R::attempt(ctx, id, inv, prep) -> Coro<Outcome<Response>>
//                  — executes the decision CAS, then resolves: returns
//                    {decided=true, resp} iff the operation for `id` took
//                    effect via THIS prep's CAS (whoever executed it), and
//                    {decided=false} iff it definitively did not and a fresh
//                    prepare is needed. The resolution must stay correct
//                    when invoked late by a stale helper (see the
//                    leave-invariant in wait_free_sim.hpp).
//   R::op_kind(inv) — the obs span kind for this invocation.
//   R::read_only(inv) — true when prepare() always resolves the operation
//                    (no decision CAS, no helping needed); such invocations
//                    never leave the fast path.
//
// ABA discipline: every CAS-register value embeds a strictly increasing
// `seq` and compares equal on `seq` alone (the Stamped idiom of
// farray/farray.hpp), so a decision CAS whose expected value was ever
// overwritten fails forever — the property the wrap-up's "definitively did
// not take effect" answers rely on.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "api/backend.hpp"
#include "obs/span.hpp"

namespace apram::universal2 {

// Identity of one operation: (pid, opseq) with opseq per-process increasing.
// Reps use it to tag persistent evidence (applied-tables, node ownership).
struct OpId {
  int pid = -1;
  std::uint64_t opseq = 0;

  friend bool operator==(const OpId&, const OpId&) = default;
};

// attempt()'s result: decided=false means "this prep's CAS definitively did
// not apply the operation; re-prepare".
template <class Resp>
struct Outcome {
  bool decided = false;
  Resp resp{};
};

template <class R, class B>
concept NormalizedRepFor =
    requires(R& r, typename B::Ctx ctx, OpId id,
             const typename R::Invocation& inv, typename R::Prep& prep) {
      typename R::Invocation;
      typename R::Response;
      typename R::Prep;
      requires std::is_default_constructible_v<typename R::Prep>;
      requires std::is_copy_constructible_v<typename R::Prep>;
      { prep.done } -> std::convertible_to<bool>;
      { prep.resp } -> std::convertible_to<typename R::Response>;
      { R::op_kind(inv) } -> std::same_as<obs::OpKind>;
      { R::read_only(inv) } -> std::same_as<bool>;
      {
        r.prepare(ctx, id, inv)
      } -> std::same_as<typename B::template Coro<typename R::Prep>>;
      {
        r.attempt(ctx, id, inv, prep)
      } -> std::same_as<
          typename B::template Coro<Outcome<typename R::Response>>>;
    };

}  // namespace apram::universal2
