// apram::universal2 — the paper's universal construction (Figure 4) ported
// to the register-backend concept.
//
// Same algorithm as core/universal.hpp's UniversalObjectSim (shared
// linearization logic, core/universal_linearize.hpp), but written over
// BackendFor so it also runs on real threads — the apples-to-apples
// baseline bench_e6 compares WaitFreeSim against on sim AND rt.
//
// Structure: the anchor array is the generic LatticeScan at
// TaggedVectorLattice<const Entry*>; each process owns an entry arena
// (std::deque — stable addresses) and a tag counter. execute() takes one
// ReadMax scan (§6.2: n²−1 reads + n+1 writes), linearizes the reachable
// precedence graph, replays the sequential spec, then publishes the new
// entry with one post() write. On rt the publishing register write is the
// release barrier that makes the (immutable) entry contents visible to
// every later scanner.
//
// Per-op cost grows with the history (the linearization walks every
// reachable entry) — exactly the overhead §5.4 concedes and universal2's
// fast path eliminates; bench_e6 pins both numbers.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/spec.hpp"
#include "api/backend.hpp"
#include "core/universal_linearize.hpp"
#include "obs/span.hpp"
#include "snapshot/lattice_scan.hpp"
#include "util/assert.hpp"

namespace apram::universal2 {

template <class B, SequentialSpec S>
class PaperUniversal {
 public:
  using Ctx = typename B::Ctx;
  template <class T>
  using Coro = typename B::template Coro<T>;

  struct Entry {
    int pid = -1;
    std::uint64_t seq = 0;  // per-process operation index (1-based)
    typename S::Invocation inv{};
    typename S::Response resp{};
    std::vector<const Entry*> preceding;  // anchor view at operation start
  };

  using Lattice = TaggedVectorLattice<const Entry*>;
  using LatticeValue = typename Lattice::Value;

  PaperUniversal(typename B::Mem& mem, int num_procs,
                 ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs), scan_(mem, num_procs, mode) {
    APRAM_CHECK(num_procs >= 1);
    per_proc_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      per_proc_.push_back(std::make_unique<PerProc>());
    }
  }

  int num_procs() const { return n_; }

  // Figure 4's execute(), backend-generic.
  Coro<typename S::Response> execute(Ctx ctx, typename S::Invocation inv) {
    const int p = ctx.pid();
    PerProc& mine = *per_proc_[static_cast<std::size_t>(p)];
    ctx.op_begin(obs::OpKind::kExecute);

    // Step 1: atomic scan of the anchor array -> view -> linearize ->
    // replay the sequential spec -> response.
    ctx.op_phase(obs::Phase::kCollect);
    LatticeValue joined = co_await scan_.read_max(ctx);
    std::vector<std::optional<const Entry*>> view = unpack(joined);
    const std::vector<const Entry*> lin = linearize_entries<S, Entry>(view);
    std::vector<typename S::Invocation> invs;
    invs.reserve(lin.size());
    for (const Entry* e : lin) invs.push_back(e->inv);
    auto run = run_sequential<S>(invs);
    auto [next_state, resp] = S::apply(run.final_state, inv);
    (void)next_state;

    // Create the entry (owner-local arena; immutable once published).
    Entry& e = mine.arena.emplace_back();
    e.pid = p;
    e.seq = ++mine.next_seq;
    e.inv = std::move(inv);
    e.resp = resp;
    e.preceding.resize(static_cast<std::size_t>(n_), nullptr);
    for (int q = 0; q < n_; ++q) {
      const auto& slot = view[static_cast<std::size_t>(q)];
      if (slot.has_value()) e.preceding[static_cast<std::size_t>(q)] = *slot;
    }

    // Step 2: publish with a single anchor write.
    ctx.op_phase(obs::Phase::kPublish);
    const std::uint64_t tag = ++mine.next_tag;
    co_await scan_.post(
        ctx, Lattice::singleton(static_cast<std::size_t>(n_),
                                static_cast<std::size_t>(p), tag, &e));
    ctx.op_end(obs::OpKind::kExecute);
    co_return resp;
  }

  std::size_t entries_created(int p) const {
    return per_proc_[static_cast<std::size_t>(p)]->arena.size();
  }

 private:
  struct alignas(64) PerProc {
    std::deque<Entry> arena;  // stable addresses; this process is the writer
    std::uint64_t next_seq = 0;
    std::uint64_t next_tag = 0;
  };

  std::vector<std::optional<const Entry*>> unpack(
      const LatticeValue& joined) const {
    std::vector<std::optional<const Entry*>> view(
        static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  snapshot::LatticeScan<B, Lattice> scan_;
  std::vector<std::unique_ptr<PerProc>> per_proc_;
};

}  // namespace apram::universal2
