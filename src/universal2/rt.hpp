// apram::universal2 — real-thread convenience wrappers.
//
// Same shape as the rt wrappers in snapshot/lattice_scan.hpp: each owns an
// api::RtBackend::Mem plus the backend-templated object, exposes the old
// int-pid call style (thread p may call only the p-indexed entry points),
// and forwards the Mem's observability / fault-injection / reclamation
// attach points. New code that composes objects should hold the Mem and
// the templated classes directly.
#pragma once

#include <cstdint>
#include <string>

#include "api/rt_backend.hpp"
#include "universal2/counter_rep.hpp"
#include "universal2/linked_list.hpp"
#include "universal2/paper_universal.hpp"

namespace apram::universal2 {

// Wait-free counter (normalized fast/slow path) on real threads.
class Counter2RT {
 public:
  using Config = Counter2<api::RtBackend>::Config;

  explicit Counter2RT(int num_procs, Config cfg = {})
      : mem_(num_procs), counter_(mem_, num_procs, "u2c", cfg) {}

  int num_procs() const { return counter_.sim().num_procs(); }

  std::int64_t inc(int p, std::int64_t by = 1) {
    return counter_.inc(api::RtBackend::Ctx{p}, by).get();
  }
  std::int64_t dec(int p, std::int64_t by = 1) {
    return counter_.dec(api::RtBackend::Ctx{p}, by).get();
  }
  std::int64_t reset(int p, std::int64_t to = 0) {
    return counter_.reset(api::RtBackend::Ctx{p}, to).get();
  }
  std::int64_t read(int p) {
    return counter_.read(api::RtBackend::Ctx{p}).get();
  }

  std::uint64_t slow_path_entries(int p) const {
    return counter_.sim().slow_path_entries(p);
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }

  Counter2<api::RtBackend>& object() { return counter_; }

 private:
  api::RtBackend::Mem mem_;
  Counter2<api::RtBackend> counter_;
};

// Wait-free sorted linked-list set on real threads.
class SortedSetRT {
 public:
  using Config = SortedSet<api::RtBackend>::Config;

  SortedSetRT(int num_procs, int capacity_per_proc, Config cfg = {})
      : mem_(num_procs),
        set_(mem_, num_procs, capacity_per_proc, "u2set", cfg) {}

  int num_procs() const { return set_.sim().num_procs(); }

  std::int64_t insert(int p, std::int64_t key) {
    return set_.insert(api::RtBackend::Ctx{p}, key).get();
  }
  std::int64_t remove(int p, std::int64_t key) {
    return set_.remove(api::RtBackend::Ctx{p}, key).get();
  }
  std::int64_t contains(int p, std::int64_t key) {
    return set_.contains(api::RtBackend::Ctx{p}, key).get();
  }

  // Quiescent membership walk (call after joins / outside the run).
  std::vector<std::int64_t> snapshot_keys(int p) {
    return set_.rep().snapshot_keys(api::RtBackend::Ctx{p}).get();
  }

  std::uint64_t slow_path_entries(int p) const {
    return set_.sim().slow_path_entries(p);
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }
  rt::reclaim::ReclaimStats reclaim_stats() const {
    return mem_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    mem_.export_reclaim_gauges(registry, name);
  }

  SortedSet<api::RtBackend>& object() { return set_; }

 private:
  api::RtBackend::Mem mem_;
  SortedSet<api::RtBackend> set_;
};

// The paper's universal construction on real threads (bench baseline).
template <SequentialSpec S>
class PaperUniversalRT {
 public:
  explicit PaperUniversalRT(int num_procs,
                            ScanMode mode = ScanMode::kOptimized)
      : mem_(num_procs), obj_(mem_, num_procs, mode) {}

  int num_procs() const { return obj_.num_procs(); }

  typename S::Response execute(int p, typename S::Invocation inv) {
    return obj_.execute(api::RtBackend::Ctx{p}, std::move(inv)).get();
  }

  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }

  PaperUniversal<api::RtBackend, S>& object() { return obj_; }

 private:
  api::RtBackend::Mem mem_;
  PaperUniversal<api::RtBackend, S> obj_;
};

}  // namespace apram::universal2
