#include "graph/digraph.hpp"

#include <algorithm>
#include <queue>

namespace apram {

Digraph::Digraph(int num_nodes)
    : n_(num_nodes),
      words_((static_cast<std::size_t>(num_nodes) + 63) / 64),
      adj_(static_cast<std::size_t>(num_nodes)),
      closure_(static_cast<std::size_t>(num_nodes),
               std::vector<std::uint64_t>(words_, 0)) {
  APRAM_CHECK(num_nodes >= 0);
}

bool Digraph::has_edge(int u, int v) const {
  check_node(u);
  check_node(v);
  const auto& succ = adj_[static_cast<std::size_t>(u)];
  return std::find(succ.begin(), succ.end(), v) != succ.end();
}

bool Digraph::has_path(int u, int v) const {
  check_node(u);
  check_node(v);
  return closure_bit(u, v);
}

void Digraph::add_edge(int u, int v) {
  check_node(u);
  check_node(v);
  APRAM_CHECK_MSG(u != v, "self-edge");
  APRAM_CHECK_MSG(!edge_would_cycle(u, v),
                  "add_edge would close a cycle; caller must test first");
  if (has_edge(u, v)) return;
  adj_[static_cast<std::size_t>(u)].push_back(v);

  // Everything reaching u (plus u itself) now reaches v and v's closure.
  const auto& vrow = closure_[static_cast<std::size_t>(v)];
  for (int w = 0; w < n_; ++w) {
    if (w == u || closure_bit(w, u)) {
      auto& wrow = closure_[static_cast<std::size_t>(w)];
      for (std::size_t word = 0; word < words_; ++word) wrow[word] |= vrow[word];
      set_closure_bit(w, v);
    }
  }
}

const std::vector<int>& Digraph::successors(int u) const {
  check_node(u);
  return adj_[static_cast<std::size_t>(u)];
}

std::vector<int> Digraph::predecessors(int v) const {
  check_node(v);
  std::vector<int> preds;
  for (int u = 0; u < n_; ++u) {
    if (has_edge(u, v)) preds.push_back(u);
  }
  return preds;
}

int Digraph::in_degree(int v) const {
  return static_cast<int>(predecessors(v).size());
}

std::vector<int> Digraph::topo_order() const {
  std::vector<int> indeg(static_cast<std::size_t>(n_), 0);
  for (int u = 0; u < n_; ++u) {
    for (int v : adj_[static_cast<std::size_t>(u)]) {
      ++indeg[static_cast<std::size_t>(v)];
    }
  }
  // Min-index-first ready queue makes the order deterministic, which in the
  // universal construction makes every process linearize identical views
  // identically (crucial for agreement on responses).
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int v = 0; v < n_; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n_));
  while (!ready.empty()) {
    const int u = ready.top();
    ready.pop();
    order.push_back(u);
    for (int v : adj_[static_cast<std::size_t>(u)]) {
      if (--indeg[static_cast<std::size_t>(v)] == 0) ready.push(v);
    }
  }
  APRAM_CHECK_MSG(static_cast<int>(order.size()) == n_,
                  "topo_order on a cyclic graph");
  return order;
}

bool Digraph::is_acyclic() const {
  for (int v = 0; v < n_; ++v) {
    if (closure_bit(v, v)) return false;
  }
  return true;
}

}  // namespace apram
