// A small dense digraph with incremental transitive closure.
//
// The lingraph construction (Figure 3) repeatedly asks "would adding this
// edge create a cycle?" — i.e. is there already a path from the head to the
// tail. Maintaining the transitive closure as bitset rows makes that query
// O(1) and each edge insertion O(V²/64), which is ideal at the graph sizes
// the universal construction produces (one node per operation in a view).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace apram {

class Digraph {
 public:
  explicit Digraph(int num_nodes);

  int num_nodes() const { return n_; }

  // Adds edge u -> v. Self-edges and duplicate edges are rejected by
  // APRAM_CHECK; adding an edge that closes a cycle is a logic error (call
  // has_path(v, u) first).
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const;

  // Is there a directed path (of length >= 1) from u to v?
  bool has_path(int u, int v) const;

  // Would add_edge(u, v) close a cycle? True iff v already reaches u
  // (or u == v).
  bool edge_would_cycle(int u, int v) const {
    return u == v || has_path(v, u);
  }

  const std::vector<int>& successors(int u) const;
  std::vector<int> predecessors(int v) const;
  int in_degree(int v) const;

  // Deterministic topological order: among ready nodes, the smallest index
  // is emitted first. Requires the graph to be acyclic (checked).
  std::vector<int> topo_order() const;

  bool is_acyclic() const;

 private:
  void check_node(int v) const { APRAM_CHECK(v >= 0 && v < n_); }
  bool closure_bit(int u, int v) const {
    return (closure_[static_cast<std::size_t>(u)]
                    [static_cast<std::size_t>(v) >> 6] >>
            (static_cast<std::size_t>(v) & 63)) &
           1u;
  }
  void set_closure_bit(int u, int v) {
    closure_[static_cast<std::size_t>(u)][static_cast<std::size_t>(v) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
  }

  int n_;
  std::size_t words_;
  std::vector<std::vector<int>> adj_;                  // direct successors
  std::vector<std::vector<std::uint64_t>> closure_;    // reachability bitsets
};

}  // namespace apram
