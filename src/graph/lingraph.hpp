// The linearization-graph construction (Figure 3, §5.3).
//
// Input: a precedence graph — a DAG whose nodes are operations, with an edge
// p → q whenever p's response precedes q's invocation — plus the dominance
// relation of Definition 14. Output: the precedence graph augmented with a
// maximal set of dominance edges (directed from dominated to dominator, so
// dominated operations linearize earlier) that does not create a cycle.
//
// The construction visits operations in an order consistent with precedence
// (here: the deterministic topological order) and considers pairs (p_i, p_j)
// with i < j exactly as the pseudocode's double loop does. The paper's
// lemmas proved over this construction — Lemma 16 (concurrent dominating
// pairs get connected), Lemma 17 (unrelated pairs commute), Lemma 18
// (acyclicity), Lemma 20 (all linearizations equivalent), Lemma 23
// (removing a sink yields a subgraph) — are property-tested over randomized
// histories in tests/graph_test.cpp.
#pragma once

#include <functional>
#include <vector>

#include "graph/digraph.hpp"

namespace apram {

// dominates(a, b): does operation (node) a dominate operation b?
using DominatesFn = std::function<bool(int, int)>;

// Builds L(G) from the precedence DAG `precedence` (edge p→q means p
// precedes q) and the dominance relation. Returns a graph over the same
// node ids containing all precedence edges plus the added dominance edges.
Digraph lingraph(const Digraph& precedence, const DominatesFn& dominates);

// A linearization of a precedence graph (Definition 19): the deterministic
// topological sort of lingraph(precedence, dominates).
std::vector<int> linearize(const Digraph& precedence,
                           const DominatesFn& dominates);

}  // namespace apram
