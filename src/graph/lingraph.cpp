#include "graph/lingraph.hpp"

namespace apram {

Digraph lingraph(const Digraph& precedence, const DominatesFn& dominates) {
  const int k = precedence.num_nodes();
  // {p_1, ..., p_k}: operations in an order consistent with precedence.
  const std::vector<int> order = precedence.topo_order();

  // L_{0,k} := G — copy all precedence edges.
  Digraph lin(k);
  for (int u = 0; u < k; ++u) {
    for (int v : precedence.successors(u)) lin.add_edge(u, v);
  }

  // Figure 3's double loop: visit p_i against each later p_j, adding the
  // dominance edge (directed dominated -> dominator) unless it would close
  // a cycle.
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      const int pi = order[static_cast<std::size_t>(i)];
      const int pj = order[static_cast<std::size_t>(j)];
      if (dominates(pi, pj) && !lin.edge_would_cycle(pj, pi)) {
        lin.add_edge(pj, pi);
      } else if (dominates(pj, pi) && !lin.edge_would_cycle(pi, pj)) {
        lin.add_edge(pi, pj);
      }
    }
  }
  return lin;
}

std::vector<int> linearize(const Digraph& precedence,
                           const DominatesFn& dominates) {
  return lingraph(precedence, dominates).topo_order();
}

}  // namespace apram
