// Real-thread AADGMS (Afek et al.) wait-free snapshot — the helping-based
// comparator of §2, on std::atomic-backed registers. See
// snapshot/baselines/afek_snapshot.hpp for the algorithm description.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rt/register.hpp"

namespace apram::rt {

template <class T>
class AfekSnapshotRT {
 public:
  using View = std::vector<std::optional<T>>;

  struct Slot {
    std::uint64_t seq = 0;
    T value{};
    View embedded;
  };

  explicit AfekSnapshotRT(int num_procs) : n_(num_procs) {
    for (int p = 0; p < n_; ++p) {
      slots_.push_back(std::make_unique<SWMRRegister<Slot>>(Slot{}));
    }
  }

  int num_procs() const { return n_; }

  View scan(int /*p*/) {
    std::vector<std::uint64_t> moved(static_cast<std::size_t>(n_), 0);
    std::vector<Slot> first(static_cast<std::size_t>(n_));
    std::vector<Slot> second(static_cast<std::size_t>(n_));
    for (;;) {
      for (int q = 0; q < n_; ++q) {
        first[static_cast<std::size_t>(q)] =
            slots_[static_cast<std::size_t>(q)]->read();
      }
      for (int q = 0; q < n_; ++q) {
        second[static_cast<std::size_t>(q)] =
            slots_[static_cast<std::size_t>(q)]->read();
      }
      bool clean = true;
      for (int q = 0; q < n_; ++q) {
        const auto uq = static_cast<std::size_t>(q);
        if (first[uq].seq != second[uq].seq) {
          clean = false;
          if (moved[uq] != 0 && moved[uq] != second[uq].seq) {
            return second[uq].embedded;  // borrowed view (helping)
          }
          moved[uq] = second[uq].seq;
        }
      }
      if (clean) {
        View view(static_cast<std::size_t>(n_));
        for (int q = 0; q < n_; ++q) {
          const auto uq = static_cast<std::size_t>(q);
          if (second[uq].seq != 0) view[uq] = second[uq].value;
        }
        return view;
      }
    }
  }

  void update(int p, T v) {
    View embedded = scan(p);
    const auto up = static_cast<std::size_t>(p);
    const Slot& current = slots_[up]->read();
    Slot next;
    next.seq = current.seq + 1;
    next.value = std::move(v);
    next.embedded = std::move(embedded);
    slots_[up]->write(std::move(next));
  }

 private:
  int n_;
  std::vector<std::unique_ptr<SWMRRegister<Slot>>> slots_;
};

}  // namespace apram::rt
