// Real-thread wait-free counter: per-thread contributions published through
// the rt snapshot object (the type-optimized counter of §5.4's closing
// remark, rt flavour). inc/dec are one atomic publication; read is one
// snapshot scan plus a local sum.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "snapshot/lattice_scan.hpp"

namespace apram::rt {

class FastCounterRT {
 public:
  explicit FastCounterRT(int num_procs,
                         ScanMode mode = ScanMode::kOptimized)
      : snap_(num_procs, mode),
        contribution_(static_cast<std::size_t>(num_procs)) {
    for (auto& c : contribution_) c = std::make_unique<Cell>();
  }

  int num_procs() const { return snap_.num_procs(); }

  // Forwards to the underlying snapshot (see LatticeScanRT::attach_obs).
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    snap_.attach_obs(registry, name, tracer);
  }

  void attach_injector(fault::RtInjector* injector) {
    snap_.attach_injector(injector);
  }

  // Reclamation accounting for the underlying snapshot's registers.
  reclaim::ReclaimStats reclaim_stats() const {
    return snap_.reclaim_stats();
  }
  void export_reclaim_gauges(obs::Registry& registry,
                             const std::string& name) const {
    snap_.export_reclaim_gauges(registry, name);
  }

  void inc(int p, std::int64_t by = 1) { add(p, by); }
  void dec(int p, std::int64_t by = 1) { add(p, -by); }

  std::int64_t read(int p) {
    std::int64_t sum = 0;
    for (const auto& slot : snap_.scan(p)) {
      if (slot.has_value()) sum += *slot;
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::int64_t value = 0;
  };

  void add(int p, std::int64_t delta) {
    auto& mine = contribution_[static_cast<std::size_t>(p)]->value;
    mine += delta;
    snap_.update(p, mine);
  }

  AtomicSnapshotRT<std::int64_t> snap_;
  std::vector<std::unique_ptr<Cell>> contribution_;
};

}  // namespace apram::rt
