// apram::rt::reclaim — bounded-memory version management for rt registers.
//
// The paper assumes unbounded atomic registers, and the original rt
// implementation mirrored that faithfully: every write appended an immutable
// node to a grow-only store, so a long-running service leaked one node per
// write. This header replaces the grow-only store with an ATOMSNAP-style
// versioned arena (see SNIPPETS.md) that keeps memory proportional to the
// number of *concurrently held* versions, not the number of writes:
//
//   * Control word. One 64-bit atomic packs {acquire count : 40 bits,
//     arena slot handle : 24 bits}. Reading the current version handle and
//     announcing the read is ONE atomic instruction (fetch_add of
//     1 << kSlotBits), so a publisher that swaps the word out learns exactly
//     how many readers acquired the outgoing version.
//
//   * Readers are wait-free. acquire() is one fetch_add on the control word;
//     release() is one fetch_sub on the slot's reference count. The last
//     holder out (which may be the publisher's transfer, below) retires the
//     slot to its allocating writer's free list.
//
//   * Publication transfers the count. A publisher installs {0, new_slot}
//     with release semantics (exchange for the single-writer register, CAS
//     for multi-writer), then adds the outgoing word's acquire count onto
//     the outgoing slot's reference count. Readers decrement that same
//     counter on release, so it reaches zero exactly when the transfer has
//     happened AND every acquirer has released — pre-transfer the count is
//     ≤ 0 (releases only), so no reader can be fooled by a transient zero.
//
//   * Failed-CAS cleanup. A CAS publisher that loses the race returns its
//     freshly allocated slot to the free list immediately (dealloc), so
//     losers do not leak — the unbounded-register implementation kept every
//     losing node forever.
//
//   * Recycling. Slots live in lazily allocated fixed-size chunks behind an
//     atomic chunk directory; retired slots destroy their payload eagerly
//     (bounding RSS, not just slot count) and are recycled through
//     per-writer Treiber free lists (push: any releasing thread, lock-free;
//     pop: the owning writer only, which makes the pop single-consumer and
//     ABA-safe without tags).
//
// Safety argument (why a held version is never recycled): a slot is retired
// only when its reference count reaches zero AFTER the publisher transferred
// the outer acquire count. Every acquire that observed the slot in the
// control word is included in that transferred count, and each holder
// contributes exactly one pending decrement, so the count is ≥ 1 until the
// last holder releases. Re-publication of a slot requires allocating it from
// a free list, which requires retirement first — so neither reclamation nor
// ABA on the publication CAS can touch a held version. See DESIGN.md
// (substitution table, "bounded versioned arena").
//
// Progress: acquire/release/deref are wait-free (single RMW each; the
// last-out retirement adds one lock-free free-list push). The single-writer
// publish is wait-free (one exchange + one transfer add). A CAS publisher is
// lock-free: its install CAS retries only while concurrent acquires bump the
// count of the expected slot (counted in ReclaimStats::acquire_contention).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace apram::rt::reclaim {

// Quiescent-read snapshot of an arena's bookkeeping. Sums are exact once the
// harness has joined its threads; while threads run they are monotone
// approximations (same contract as obs counters).
struct ReclaimStats {
  std::uint64_t allocated = 0;  // slots ever handed out (monotone)
  std::uint64_t freed = 0;      // returns to a free list (retires + losers)
  std::uint64_t retired = 0;    // published versions whose last holder left
  std::uint64_t recycled = 0;   // allocations served from a free list
  std::uint64_t acquire_contention = 0;  // publish-CAS retries under acquires

  // Slots currently outside the free lists: the published version, versions
  // still held by readers, and slots a writer has allocated but not yet
  // published. Bounded by holders + writers + O(1), never by write count.
  std::uint64_t live_versions() const { return allocated - freed; }

  ReclaimStats& operator+=(const ReclaimStats& o) {
    allocated += o.allocated;
    freed += o.freed;
    retired += o.retired;
    recycled += o.recycled;
    acquire_contention += o.acquire_contention;
    return *this;
  }
};

// One register's version store: control word + slot pool + per-writer free
// lists. T is the register's value type; num_writers is the number of
// threads that may allocate/publish (1 for a single-writer register).
template <class T>
class VersionArena {
 public:
  // Control-word layout: {acquire count : 64-kSlotBits, slot : kSlotBits}.
  // 24 slot bits address 16M slots (the arena caps far below, see kMaxSlots);
  // the 40-bit count would need ~10^12 acquires of ONE version between two
  // publications to overflow — unreachable in any real execution.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kCountOne = std::uint64_t{1} << kSlotBits;

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  static constexpr std::uint32_t kChunkSize = 16;   // slots per chunk
  static constexpr std::uint32_t kMaxChunks = 512;  // 8192 slots per register
  static constexpr std::uint32_t kMaxSlots = kChunkSize * kMaxChunks;

  // A reader's handle on an acquired version. Valid until release().
  struct Ref {
    std::uint32_t slot;
  };

  VersionArena(int num_writers, T initial)
      : num_writers_(num_writers),
        free_(new FreeHead[static_cast<std::size_t>(num_writers)]) {
    APRAM_CHECK(num_writers >= 1);
    const std::uint32_t s = alloc(0, std::move(initial));
    ctrl_.word.store(pack(0, s), std::memory_order_release);
  }

  VersionArena(const VersionArena&) = delete;
  VersionArena& operator=(const VersionArena&) = delete;

  ~VersionArena() {
    const std::uint32_t used = next_fresh_.load(std::memory_order_acquire);
    const std::uint32_t chunks = (used + kChunkSize - 1) / kChunkSize;
    for (std::uint32_t c = 0; c < chunks && c < kMaxChunks; ++c) {
      delete chunks_[c].load(std::memory_order_acquire);
    }
  }

  // ---- reader path (wait-free) -------------------------------------------

  // One fetch_add: bumps the current version's outer count and returns its
  // handle. The acquire order pairs with the publisher's release install
  // (RMWs by other readers extend the release sequence, so any acquirer
  // synchronizes with the install it reads from).
  Ref acquire() const {
    const std::uint64_t w =
        ctrl_.word.fetch_add(kCountOne, std::memory_order_acquire);
    return Ref{slot_of(w)};
  }

  // Valid only between acquire() and release() of `ref`.
  const T& get(Ref ref) const { return *slot_at(ref.slot).value; }

  // One fetch_sub; the holder that brings the count to zero (possible only
  // after the publisher's transfer, see header) retires the slot.
  void release(Ref ref) const {
    Slot& s = slot_at(ref.slot);
    if (s.refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      retire(ref.slot);
    }
  }

  // ---- writer path -------------------------------------------------------

  // Allocates a slot (own free list first, fresh chunk slot otherwise) and
  // constructs the value in place. Caller must be thread `writer` — each
  // free list has a single consumer, which is what makes its pop ABA-safe.
  std::uint32_t alloc(int writer, T v) {
    std::uint32_t idx = pop_free(writer);
    const bool reused = idx != kNilSlot;
    if (!reused) idx = fresh_slot();
    Slot& s = slot_at(idx);
    s.owner = static_cast<std::uint32_t>(writer);
    s.value.emplace(std::move(v));
    stats_.allocated.fetch_add(1, std::memory_order_relaxed);
    if (reused) stats_.recycled.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }

  // Failed-CAS cleanup: destroys the never-published value and returns the
  // slot to its writer's free list immediately.
  void dealloc(std::uint32_t slot) { push_free(slot); }

  // Single-writer publication: install {0, slot} and transfer the outgoing
  // word's acquire count onto the outgoing slot.
  void publish(std::uint32_t slot) {
    const std::uint64_t old =
        ctrl_.word.exchange(pack(0, slot), std::memory_order_acq_rel);
    transfer(slot_of(old), count_of(old));
  }

  // CAS publication: installs {0, slot} iff the current version is still
  // `held` (which the caller has acquired — that hold is what makes the
  // 64-bit compare ABA-free: a held slot cannot retire, so it cannot be
  // reallocated and re-published). Retries only while concurrent acquires
  // move the count; returns false as soon as the version changed. On
  // success the caller's own hold is part of the transferred count, so the
  // caller must still release(held) afterwards (never before — the hold is
  // the ABA guard).
  bool try_publish(Ref held, std::uint32_t slot) {
    std::uint64_t w = ctrl_.word.load(std::memory_order_acquire);
    while (slot_of(w) == held.slot) {
      if (ctrl_.word.compare_exchange_weak(w, pack(0, slot),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        transfer(held.slot, count_of(w));
        return true;
      }
      stats_.acquire_contention.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  // ---- diagnostics -------------------------------------------------------

  ReclaimStats stats() const {
    ReclaimStats out;
    out.allocated = stats_.allocated.load(std::memory_order_relaxed);
    out.freed = stats_.freed.load(std::memory_order_relaxed);
    out.retired = stats_.retired.load(std::memory_order_relaxed);
    out.recycled = stats_.recycled.load(std::memory_order_relaxed);
    out.acquire_contention =
        stats_.acquire_contention.load(std::memory_order_relaxed);
    return out;
  }

  std::uint32_t current_slot() const {
    return slot_of(ctrl_.word.load(std::memory_order_acquire));
  }

 private:
  // Slot layout: the reference count is hot (every release and every
  // transfer lands on it) and sits on its own cache line so those RMWs do
  // not invalidate the line readers stream the value from. next/owner are
  // touched only on the alloc/retire cold path.
  struct Slot {
    alignas(64) std::atomic<std::int64_t> refs{0};
    std::atomic<std::uint32_t> next{kNilSlot};  // free-list link
    std::uint32_t owner = 0;                    // writer whose list it joins
    alignas(64) std::optional<T> value;
  };

  struct Chunk {
    Slot slots[kChunkSize];
  };

  // The control word lives alone on its cache line: it is the single
  // hottest word (every read fetch_adds it), and sharing it with the chunk
  // directory or stats would put cold metadata in the invalidation blast
  // radius of every acquire.
  struct alignas(64) Ctrl {
    std::atomic<std::uint64_t> word{0};
  };

  struct alignas(64) FreeHead {
    std::atomic<std::uint32_t> head{kNilSlot};
  };

  struct alignas(64) Stats {
    std::atomic<std::uint64_t> allocated{0};
    std::atomic<std::uint64_t> freed{0};
    std::atomic<std::uint64_t> retired{0};
    std::atomic<std::uint64_t> recycled{0};
    std::atomic<std::uint64_t> acquire_contention{0};
  };

  static constexpr std::uint64_t pack(std::uint64_t count,
                                      std::uint32_t slot) {
    return (count << kSlotBits) | slot;
  }
  static constexpr std::uint32_t slot_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w & kSlotMask);
  }
  static constexpr std::uint64_t count_of(std::uint64_t w) {
    return w >> kSlotBits;
  }

  Slot& slot_at(std::uint32_t idx) const {
    Chunk* c = chunks_[idx / kChunkSize].load(std::memory_order_acquire);
    return c->slots[idx % kChunkSize];
  }

  // Bump allocation of a never-used slot; installs the owning chunk on
  // first touch (losing installers delete their copy). Exhaustion aborts
  // loudly — live slots are bounded by holders + writers + O(1), so hitting
  // the cap means a leaked acquire, not a capacity problem.
  std::uint32_t fresh_slot() {
    const std::uint32_t idx =
        next_fresh_.fetch_add(1, std::memory_order_relaxed);
    APRAM_CHECK_MSG(idx < kMaxSlots,
                    "VersionArena exhausted: more live versions than "
                    "readers+writers can hold — unbalanced acquire/release?");
    const std::uint32_t c = idx / kChunkSize;
    if (chunks_[c].load(std::memory_order_acquire) == nullptr) {
      Chunk* fresh = new Chunk();
      Chunk* expected = nullptr;
      if (!chunks_[c].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        delete fresh;  // another allocator installed the chunk first
      }
    }
    return idx;
  }

  // Moves the outgoing word's acquire count onto the slot. Pre-transfer the
  // slot's count is -(releases so far) ≤ 0; post-transfer it equals the
  // number of outstanding holders, so zero here (or in release) means the
  // last holder is gone.
  void transfer(std::uint32_t slot, std::uint64_t acquires) const {
    Slot& s = slot_at(slot);
    const std::int64_t a = static_cast<std::int64_t>(acquires);
    if (s.refs.fetch_add(a, std::memory_order_acq_rel) + a == 0) {
      retire(slot);
    }
  }

  void retire(std::uint32_t slot) const {
    stats_.retired.fetch_add(1, std::memory_order_relaxed);
    push_free(slot);
  }

  // Lock-free multi-producer push onto the slot owner's free list. Destroys
  // the payload first so retired versions release their heap memory (RSS
  // stays flat, not just slot counts). The release order on the winning CAS
  // pairs with pop_free's acquire so the next allocator sees the reset.
  void push_free(std::uint32_t slot) const {
    Slot& s = slot_at(slot);
    s.value.reset();
    std::atomic<std::uint32_t>& head = free_[s.owner].head;
    std::uint32_t h = head.load(std::memory_order_relaxed);
    do {
      s.next.store(h, std::memory_order_relaxed);
    } while (!head.compare_exchange_weak(h, slot, std::memory_order_release,
                                         std::memory_order_relaxed));
    stats_.freed.fetch_add(1, std::memory_order_relaxed);
  }

  // Single-consumer pop (only thread `writer` pops list `writer`): a CAS
  // loop that can lose only to concurrent pushes, and since nobody else
  // removes nodes the head cannot be recycled under us — no ABA tag needed.
  std::uint32_t pop_free(int writer) {
    std::atomic<std::uint32_t>& head =
        free_[static_cast<std::size_t>(writer)].head;
    std::uint32_t h = head.load(std::memory_order_acquire);
    while (h != kNilSlot) {
      const std::uint32_t next =
          slot_at(h).next.load(std::memory_order_relaxed);
      if (head.compare_exchange_weak(h, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return h;
      }
    }
    return kNilSlot;
  }

  // Padding audit (see rt/arena.cpp for the whole-class checks): each hot
  // atomic owns its cache line. Slot::refs sits at offset 0 of a 64-aligned
  // struct and Slot::value is 64-aligned itself, so refcount RMWs and value
  // reads never invalidate each other's lines; Ctrl/FreeHead/Stats are
  // line-sized-or-aligned so the directory, free lists, and stats stay out
  // of the control word's invalidation blast radius.
  static_assert(alignof(Slot) == 64 && sizeof(Slot) >= 128,
                "Slot refcount and payload must live on separate lines");
  static_assert(alignof(Ctrl) == 64 && sizeof(Ctrl) == 64,
                "control word must own its cache line");
  static_assert(alignof(FreeHead) == 64 && sizeof(FreeHead) == 64,
                "free-list heads must not share lines");
  static_assert(alignof(Stats) == 64, "stats must not share the ctrl line");

  int num_writers_;
  // Readers mutate the control word (the acquire fetch_add) and slot
  // refcounts from logically-const read paths; the arena's logical state —
  // the sequence of published values — is untouched by them.
  mutable Ctrl ctrl_;
  mutable Stats stats_;
  std::unique_ptr<FreeHead[]> free_;  // one per writer
  std::atomic<std::uint32_t> next_fresh_{0};
  mutable std::atomic<Chunk*> chunks_[kMaxChunks] = {};
};

}  // namespace apram::rt::reclaim
