#include "rt/thread_harness.hpp"

#include <memory>
#include <thread>

#include "obs/rt_probe.hpp"
#include "obs/span.hpp"
#include "util/assert.hpp"

namespace apram::rt {

namespace {

// Shared launch path of parallel_run / run_with_stall: spawns the workers,
// releases the start barrier once all are waiting on it, and returns the
// joinable threads. The barrier outlives this function via shared_ptr — the
// last worker through it drops the final reference; `on_done` may be a
// temporary at the call site, so each worker holds its own copy.
// `on_done(pid)` (may be empty) runs on the worker right after its body
// returns, before the kDone trace event.
struct StartBarrier {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
};

std::vector<std::thread> launch_workers(
    int num_threads, const std::function<void(int)>& body,
    obs::Tracer* tracer, const std::function<void(int)>& on_done) {
  APRAM_CHECK(num_threads >= 1);
  APRAM_CHECK_MSG(tracer == nullptr || tracer->num_rings() >= num_threads,
                  "tracer needs one ring per harness thread");
  auto barrier = std::make_shared<StartBarrier>();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int pid = 0; pid < num_threads; ++pid) {
    threads.emplace_back([barrier, &body, tracer, on_done, pid] {
      obs::set_thread_pid(pid);
      // Pass the raw pid: pin_this_shard owns the >= kMaxShards fallback
      // (modulo sharing plus a warning and the pinning_degraded counter).
      // Pre-clamping here would hide the degradation from obs.
      obs::pin_this_shard(pid);
      obs::set_thread_span_tracer(tracer);
      barrier->ready.fetch_add(1, std::memory_order_relaxed);
      while (!barrier->go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (tracer != nullptr) {
        tracer->emit(obs::TraceEvent{tracer->now_ns(), pid,
                                     obs::EventKind::kSpawn, -1, 0});
      }
      body(pid);
      if (on_done) on_done(pid);
      if (tracer != nullptr) {
        tracer->emit(obs::TraceEvent{tracer->now_ns(), pid,
                                     obs::EventKind::kDone, -1, 0});
      }
      obs::set_thread_span_tracer(nullptr);
      obs::set_thread_pid(-1);
    });
  }
  while (barrier->ready.load(std::memory_order_relaxed) < num_threads) {
    std::this_thread::yield();
  }
  barrier->go.store(true, std::memory_order_release);
  return threads;
}

}  // namespace

void parallel_run(int num_threads, const std::function<void(int)>& body,
                  obs::Tracer* tracer) {
  std::vector<std::thread> threads =
      launch_workers(num_threads, body, tracer, {});
  for (auto& t : threads) t.join();
}

void run_with_stall(int num_threads, const std::function<void(int)>& body,
                    fault::RtInjector& injector, int victim,
                    std::uint64_t stall_after,
                    const std::function<void()>& while_stalled,
                    obs::Tracer* tracer, fault::StallPoint point) {
  APRAM_CHECK(victim >= 0 && victim < num_threads);
  injector.arm_stall(victim, stall_after, point);

  std::atomic<bool> victim_done{false};
  std::vector<std::thread> threads = launch_workers(
      num_threads, body, tracer, [&victim_done, victim](int pid) {
        if (pid == victim) victim_done.store(true, std::memory_order_release);
      });

  // Wait until the victim is parked — or until it finished its whole body
  // below the stall threshold (completion wins, as with sim crashes). The
  // deadline turns a harness deadlock into a loud failure.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!injector.stall_engaged() &&
         !victim_done.load(std::memory_order_acquire)) {
    APRAM_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                    "stall victim neither parked nor finished");
    std::this_thread::yield();
  }

  if (while_stalled) while_stalled();

  injector.release_stall();
  for (auto& t : threads) t.join();
}

ThroughputRun::ThroughputRun(int num_threads) : n_(num_threads) {}

double ThroughputRun::run(std::chrono::milliseconds window,
                          const std::function<void(int)>& body) {
  ops_.assign(static_cast<std::size_t>(n_), 0);
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::thread timer([&] {
    std::this_thread::sleep_for(window);
    stop.store(true, std::memory_order_release);
  });
  parallel_run(n_, [&](int pid) {
    std::uint64_t count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      body(pid);
      ++count;
    }
    ops_[static_cast<std::size_t>(pid)] = count;
  });
  timer.join();

  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::uint64_t total = 0;
  for (auto c : ops_) total += c;
  return static_cast<double>(total) / elapsed;
}

double ThroughputRun::run_ops(std::uint64_t ops_per_thread,
                              const std::function<void(int)>& body) {
  ops_.assign(static_cast<std::size_t>(n_), ops_per_thread);
  const auto t0 = std::chrono::steady_clock::now();
  parallel_run(n_, [&](int pid) {
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) body(pid);
  });
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  return static_cast<double>(ops_per_thread) * static_cast<double>(n_) /
         elapsed;
}

void ThroughputRun::export_metrics(obs::Registry& registry,
                                   const std::string& prefix) const {
  std::uint64_t total = 0;
  for (int pid = 0; pid < n_; ++pid) {
    const std::uint64_t ops = ops_[static_cast<std::size_t>(pid)];
    registry.gauge(prefix + ".ops.p" + std::to_string(pid))
        .set(static_cast<std::int64_t>(ops));
    total += ops;
  }
  registry.gauge(prefix + ".ops_total").set(static_cast<std::int64_t>(total));
}

}  // namespace apram::rt
