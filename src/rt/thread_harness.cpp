#include "rt/thread_harness.hpp"

#include <thread>

#include "obs/rt_probe.hpp"
#include "util/assert.hpp"

namespace apram::rt {

void parallel_run(int num_threads, const std::function<void(int)>& body,
                  obs::Tracer* tracer) {
  APRAM_CHECK(num_threads >= 1);
  APRAM_CHECK_MSG(tracer == nullptr || tracer->num_rings() >= num_threads,
                  "tracer needs one ring per harness thread");
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int pid = 0; pid < num_threads; ++pid) {
    threads.emplace_back([&, pid] {
      obs::set_thread_pid(pid);
      obs::pin_this_shard(pid);
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (tracer != nullptr) {
        tracer->emit(obs::TraceEvent{tracer->now_ns(), pid,
                                     obs::EventKind::kSpawn, -1, 0});
      }
      body(pid);
      if (tracer != nullptr) {
        tracer->emit(obs::TraceEvent{tracer->now_ns(), pid,
                                     obs::EventKind::kDone, -1, 0});
      }
      obs::set_thread_pid(-1);
    });
  }
  while (ready.load(std::memory_order_relaxed) < num_threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

ThroughputRun::ThroughputRun(int num_threads) : n_(num_threads) {}

double ThroughputRun::run(std::chrono::milliseconds window,
                          const std::function<void(int)>& body) {
  ops_.assign(static_cast<std::size_t>(n_), 0);
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::thread timer([&] {
    std::this_thread::sleep_for(window);
    stop.store(true, std::memory_order_release);
  });
  parallel_run(n_, [&](int pid) {
    std::uint64_t count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      body(pid);
      ++count;
    }
    ops_[static_cast<std::size_t>(pid)] = count;
  });
  timer.join();

  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::uint64_t total = 0;
  for (auto c : ops_) total += c;
  return static_cast<double>(total) / elapsed;
}

void ThroughputRun::export_metrics(obs::Registry& registry,
                                   const std::string& prefix) const {
  std::uint64_t total = 0;
  for (int pid = 0; pid < n_; ++pid) {
    const std::uint64_t ops = ops_[static_cast<std::size_t>(pid)];
    registry.gauge(prefix + ".ops.p" + std::to_string(pid))
        .set(static_cast<std::int64_t>(ops));
    total += ops;
  }
  registry.gauge(prefix + ".ops_total").set(static_cast<std::int64_t>(total));
}

}  // namespace apram::rt
