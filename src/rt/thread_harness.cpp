#include "rt/thread_harness.hpp"

#include <thread>

#include "util/assert.hpp"

namespace apram::rt {

void parallel_run(int num_threads, const std::function<void(int)>& body) {
  APRAM_CHECK(num_threads >= 1);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int pid = 0; pid < num_threads; ++pid) {
    threads.emplace_back([&, pid] {
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      body(pid);
    });
  }
  while (ready.load(std::memory_order_relaxed) < num_threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

ThroughputRun::ThroughputRun(int num_threads) : n_(num_threads) {}

double ThroughputRun::run(std::chrono::milliseconds window,
                          const std::function<void(int)>& body) {
  ops_.assign(static_cast<std::size_t>(n_), 0);
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::thread timer([&] {
    std::this_thread::sleep_for(window);
    stop.store(true, std::memory_order_release);
  });
  parallel_run(n_, [&](int pid) {
    std::uint64_t count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      body(pid);
      ++count;
    }
    ops_[static_cast<std::size_t>(pid)] = count;
  });
  timer.join();

  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::uint64_t total = 0;
  for (auto c : ops_) total += c;
  return static_cast<double>(total) / elapsed;
}

}  // namespace apram::rt
