// Real-thread approximate agreement — the Figure 2 algorithm on
// std::atomic-backed single-writer registers. Thread p may call only the
// p-indexed entry points.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "agreement/approx_spec.hpp"
#include "rt/register.hpp"
#include "util/assert.hpp"

namespace apram::rt {

class ApproxAgreementRT {
 public:
  struct Entry {
    double prefer = 0.0;
    std::int64_t round = 0;  // 0 = ⊥
  };

  ApproxAgreementRT(int num_procs, double epsilon)
      : n_(num_procs), eps_(epsilon) {
    APRAM_CHECK(num_procs >= 1);
    APRAM_CHECK(epsilon > 0.0);
    for (int p = 0; p < n_; ++p) {
      r_.push_back(std::make_unique<SWMRRegister<Entry>>(Entry{}));
    }
  }

  int num_procs() const { return n_; }
  double epsilon() const { return eps_; }

  void input(int p, double x) {
    const Entry mine = r_[static_cast<std::size_t>(p)]->read();
    if (mine.round == 0) {
      r_[static_cast<std::size_t>(p)]->write(Entry{x, 1});
    }
  }

  // Figure 2's output loop; returns the decided value and, via out-param,
  // the number of rounds the caller reached (for the harness).
  double output(int p, std::int64_t* rounds_out = nullptr) {
    bool advance = false;
    for (;;) {
      std::vector<Entry> entries;
      entries.reserve(static_cast<std::size_t>(n_));
      for (int q = 0; q < n_; ++q) {
        entries.push_back(r_[static_cast<std::size_t>(q)]->read());
      }
      const Entry mine = entries[static_cast<std::size_t>(p)];
      APRAM_CHECK_MSG(mine.round >= 1, "output() requires a prior input()");

      std::int64_t max_round = 0;
      for (const Entry& e : entries) max_round = std::max(max_round, e.round);

      RealRange eligible;
      RealRange leaders;
      for (const Entry& e : entries) {
        if (e.round == 0) continue;
        if (e.round >= mine.round - 1) eligible.extend(e.prefer);
        if (e.round == max_round) leaders.extend(e.prefer);
      }

      if (eligible.size() < eps_ / 2.0) {
        if (rounds_out != nullptr) *rounds_out = mine.round;
        return mine.prefer;
      } else if (leaders.size() < eps_ / 2.0 || advance) {
        r_[static_cast<std::size_t>(p)]->write(
            Entry{leaders.midpoint(), mine.round + 1});
        advance = false;
      } else {
        advance = true;
      }
    }
  }

  double decide(int p, double x) {
    input(p, x);
    return output(p);
  }

 private:
  int n_;
  double eps_;
  std::vector<std::unique_ptr<SWMRRegister<Entry>>> r_;
};

}  // namespace apram::rt
