// Real-thread implementation of the Figure 5 lattice scan and the snapshot
// object built on it — the same algorithms as snapshot/lattice_scan.hpp and
// snapshot/atomic_snapshot.hpp, on std::atomic-backed registers instead of
// simulated ones. Thread p may call only the p-indexed entry points (the
// single-writer discipline of the model).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lattice/lattice.hpp"
#include "rt/register.hpp"
#include "snapshot/lattice_scan.hpp"  // ScanMode

namespace apram::rt {

template <Semilattice L>
class LatticeScanRT {
 public:
  using Value = typename L::Value;

  explicit LatticeScanRT(int num_procs, ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs), mode_(mode) {
    APRAM_CHECK(num_procs >= 1);
    regs_.resize(static_cast<std::size_t>(n_));
    for (auto& row : regs_) {
      for (int i = 0; i <= n_ + 1; ++i) {
        row.push_back(std::make_unique<SWMRRegister<Value>>(L::bottom()));
      }
    }
    caches_.reserve(static_cast<std::size_t>(n_));
    for (int p = 0; p < n_; ++p) {
      caches_.push_back(std::make_unique<Cache>());
      caches_.back()->row.assign(static_cast<std::size_t>(n_) + 2,
                                 L::bottom());
    }
  }

  int num_procs() const { return n_; }

  // Figure 5; callable only by thread p.
  Value scan(int p, Value v) {
    auto& cache = caches_[static_cast<std::size_t>(p)]->row;

    Value acc0 = std::move(v);
    if (mode_ == ScanMode::kPlain) {
      acc0 = L::join(std::move(acc0), reg(p, 0).read());
    } else {
      acc0 = L::join(std::move(acc0), cache[0]);
    }
    cache[0] = acc0;
    reg(p, 0).write(std::move(acc0));

    for (int i = 1; i <= n_ + 1; ++i) {
      Value acc = cache[static_cast<std::size_t>(i)];
      for (int q = 0; q < n_; ++q) {
        if (q == p && mode_ == ScanMode::kOptimized) {
          acc = L::join(std::move(acc), cache[static_cast<std::size_t>(i - 1)]);
        } else {
          acc = L::join(std::move(acc), reg(q, i - 1).read());
        }
      }
      cache[static_cast<std::size_t>(i)] = acc;
      if (i <= n_ || mode_ == ScanMode::kPlain) {
        reg(p, i).write(std::move(acc));
      }
    }
    return cache[static_cast<std::size_t>(n_) + 1];
  }

  void write_l(int p, Value v) { (void)scan(p, std::move(v)); }

  Value read_max(int p) { return scan(p, L::bottom()); }

  // Instruments every register of the scan matrix: aggregate counters
  // `rt.<name>.reads` / `rt.<name>.writes` in `registry`, plus per-access
  // trace events (object id = p*(n+2)+i) when `tracer` is non-null. Attach
  // before concurrent use; registry/tracer must outlive this object.
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    obs::Counter* reads = &registry.counter("rt." + name + ".reads");
    obs::Counter* writes = &registry.counter("rt." + name + ".writes");
    probes_.clear();
    probes_.reserve(static_cast<std::size_t>(n_) *
                    (static_cast<std::size_t>(n_) + 2));
    for (int p = 0; p < n_; ++p) {
      for (int i = 0; i <= n_ + 1; ++i) {
        auto probe = std::make_unique<obs::RtProbe>();
        probe->reads = reads;
        probe->writes = writes;
        probe->tracer = tracer;
        probe->object = p * (n_ + 2) + i;
        reg(p, i).attach_probe(probe.get());
        probes_.push_back(std::move(probe));
      }
    }
  }

  // Attaches a fault injector to every register of the scan matrix (see
  // fault/rt_inject.hpp); nullptr detaches. Attach before concurrent use.
  void attach_injector(fault::RtInjector* injector) {
    for (int p = 0; p < n_; ++p) {
      for (int i = 0; i <= n_ + 1; ++i) {
        reg(p, i).attach_injector(injector);
      }
    }
  }

  // One-write contribution (snapshot update path).
  void post(int p, Value v) {
    auto& cache = caches_[static_cast<std::size_t>(p)]->row;
    Value acc = std::move(v);
    if (mode_ == ScanMode::kPlain) {
      acc = L::join(std::move(acc), reg(p, 0).read());
    } else {
      acc = L::join(std::move(acc), cache[0]);
    }
    cache[0] = acc;
    reg(p, 0).write(std::move(acc));
  }

 private:
  // Each thread's cache row lives on its own cache lines.
  struct alignas(64) Cache {
    std::vector<Value> row;
  };

  SWMRRegister<Value>& reg(int p, int i) {
    return *regs_[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
  }

  int n_;
  ScanMode mode_;
  std::vector<std::vector<std::unique_ptr<SWMRRegister<Value>>>> regs_;
  std::vector<std::unique_ptr<Cache>> caches_;
  std::vector<std::unique_ptr<obs::RtProbe>> probes_;
};

// Snapshot object on the tagged-vector lattice (end of §6), rt flavour.
template <class T>
class AtomicSnapshotRT {
 public:
  using Lattice = TaggedVectorLattice<T>;
  using LatticeValue = typename Lattice::Value;

  explicit AtomicSnapshotRT(int num_procs,
                            ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs),
        scan_(num_procs, mode),
        next_tag_(static_cast<std::size_t>(num_procs)) {
    for (auto& t : next_tag_) t = std::make_unique<Tag>();
  }

  int num_procs() const { return n_; }

  void update(int p, T v) {
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    scan_.post(p, Lattice::singleton(static_cast<std::size_t>(n_),
                                     static_cast<std::size_t>(p), tag,
                                     std::move(v)));
  }

  std::vector<std::optional<T>> scan(int p) {
    return unpack(scan_.read_max(p));
  }

  // Forwards to the underlying scan matrix (see LatticeScanRT::attach_obs).
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    scan_.attach_obs(registry, name, tracer);
  }

  void attach_injector(fault::RtInjector* injector) {
    scan_.attach_injector(injector);
  }

  std::vector<std::optional<T>> update_and_scan(int p, T v) {
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    return unpack(scan_.scan(
        p, Lattice::singleton(static_cast<std::size_t>(n_),
                              static_cast<std::size_t>(p), tag,
                              std::move(v))));
  }

 private:
  struct alignas(64) Tag {
    std::uint64_t value = 0;
  };

  std::vector<std::optional<T>> unpack(const LatticeValue& joined) const {
    std::vector<std::optional<T>> view(static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  LatticeScanRT<Lattice> scan_;
  std::vector<std::unique_ptr<Tag>> next_tag_;
};

}  // namespace apram::rt
