// DEPRECATED ALIAS HEADER. The Figure 5 lattice scan is implemented once in
// snapshot/lattice_scan.hpp as apram::snapshot::LatticeScan<Backend, L>;
// this header keeps the historical rt class names alive as thin wrappers
// that instantiate it with apram::api::RtBackend and expose the old int-pid
// call style. New code should hold an api::RtBackend::Mem and the backend-
// templated class directly. Thread p may call only the p-indexed entry
// points (the single-writer discipline of the model).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/rt_backend.hpp"
#include "lattice/lattice.hpp"
#include "snapshot/lattice_scan.hpp"

namespace apram::rt {

template <Semilattice L>
class LatticeScanRT {
 public:
  using Value = typename L::Value;

  explicit LatticeScanRT(int num_procs, ScanMode mode = ScanMode::kOptimized)
      : mem_(num_procs), impl_(mem_, num_procs, mode) {}

  int num_procs() const { return impl_.num_procs(); }

  // Figure 5; callable only by thread p.
  Value scan(int p, Value v) {
    return impl_.scan(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  void write_l(int p, Value v) {
    impl_.write_l(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  Value read_max(int p) {
    return impl_.read_max(api::RtBackend::Ctx{p}).get();
  }

  // One-write contribution (snapshot update path).
  void post(int p, Value v) {
    impl_.post(api::RtBackend::Ctx{p}, std::move(v)).get();
  }

  // Instruments every register of the scan matrix: aggregate counters
  // `rt.<name>.reads` / `rt.<name>.writes` (and `.cas`, unused here) in
  // `registry`, plus per-access trace events (object id = p*(n+2)+i) when
  // `tracer` is non-null. Attach before concurrent use; registry/tracer must
  // outlive this object.
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    mem_.attach_obs(registry, name, tracer);
  }

  // Attaches a fault injector to every register of the scan matrix (see
  // fault/rt_inject.hpp); nullptr detaches. Attach before concurrent use.
  void attach_injector(fault::RtInjector* injector) {
    mem_.attach_injector(injector);
  }

 private:
  api::RtBackend::Mem mem_;
  snapshot::LatticeScan<api::RtBackend, L> impl_;
};

// Snapshot object on the tagged-vector lattice (end of §6), rt flavour.
template <class T>
class AtomicSnapshotRT {
 public:
  using Lattice = TaggedVectorLattice<T>;
  using LatticeValue = typename Lattice::Value;

  explicit AtomicSnapshotRT(int num_procs,
                            ScanMode mode = ScanMode::kOptimized)
      : n_(num_procs),
        scan_(num_procs, mode),
        next_tag_(static_cast<std::size_t>(num_procs)) {
    for (auto& t : next_tag_) t = std::make_unique<Tag>();
  }

  int num_procs() const { return n_; }

  void update(int p, T v) {
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    scan_.post(p, Lattice::singleton(static_cast<std::size_t>(n_),
                                     static_cast<std::size_t>(p), tag,
                                     std::move(v)));
  }

  std::vector<std::optional<T>> scan(int p) {
    return unpack(scan_.read_max(p));
  }

  // Forwards to the underlying scan matrix (see LatticeScanRT::attach_obs).
  void attach_obs(obs::Registry& registry, const std::string& name,
                  obs::Tracer* tracer = nullptr) {
    scan_.attach_obs(registry, name, tracer);
  }

  void attach_injector(fault::RtInjector* injector) {
    scan_.attach_injector(injector);
  }

  std::vector<std::optional<T>> update_and_scan(int p, T v) {
    const std::uint64_t tag = ++next_tag_[static_cast<std::size_t>(p)]->value;
    return unpack(scan_.scan(
        p, Lattice::singleton(static_cast<std::size_t>(n_),
                              static_cast<std::size_t>(p), tag,
                              std::move(v))));
  }

 private:
  struct alignas(64) Tag {
    std::uint64_t value = 0;
  };

  std::vector<std::optional<T>> unpack(const LatticeValue& joined) const {
    std::vector<std::optional<T>> view(static_cast<std::size_t>(n_));
    for (std::size_t i = 0;
         i < joined.size() && i < static_cast<std::size_t>(n_); ++i) {
      if (joined[i].tag != 0) view[i] = joined[i].value;
    }
    return view;
  }

  int n_;
  LatticeScanRT<Lattice> scan_;
  std::vector<std::unique_ptr<Tag>> next_tag_;
};

}  // namespace apram::rt
