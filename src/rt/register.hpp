// Real-thread atomic registers (the `apram::rt` runtime).
//
// The paper's model assumes atomic registers large enough to hold whole
// arrays ("numerous techniques exist for constructing large atomic registers
// from smaller ones"). On real hardware we realize an arbitrarily large
// single-writer multi-reader atomic register by publishing immutable
// versions through one atomic word. Two implementations share that shape:
//
//   * Bounded (the default): versions live in an rt::reclaim::VersionArena —
//     a 64-bit control word packing {acquire count, arena slot}, wait-free
//     reader acquire/release, publication with count transfer, failed-CAS
//     cleanup, and per-writer free-list recycling. Memory is proportional to
//     concurrent holders, never to write count. See rt/reclaim.hpp for the
//     protocol and safety argument.
//
//   * Unbounded (Unbounded* classes; the APRAM_RT_UNBOUNDED build flips the
//     default aliases to them): every write appends to a grow-only node
//     store that is never freed before the register is destroyed — the
//     paper's unbounded-register assumption, verbatim. Use it for exact
//     paper-mode audits where reclamation itself must be out of the picture.
//
// Reads return BY VALUE in both flavours (the copy happens while the version
// is held; bounded readers then release it). Both read paths are wait-free:
// unbounded is one acquire-load, bounded is one fetch_add + one fetch_sub.
//
// Both register flavours carry an optional apram::obs probe (attach_probe):
// unattached, an access pays one relaxed pointer load and a predictable
// branch; attached, each access is counted (relaxed fetch_add) and — when
// the calling thread has a model pid — traced with an rt timestamp.
//
// They also carry an optional apram::fault::RtInjector (attach_injector)
// that fires BEFORE the access takes effect — the injection point is the
// access boundary, the only place the model lets an adversary act. The
// bounded registers add a second injection point, on_hold(), between a
// reader's acquire and its dereference: stalling there keeps a version
// pinned while writers churn, which is exactly the window a reclamation bug
// would need to free a held version (tests/rt_reclaim_test.cpp proves it
// cannot). The unattached cost is the same one relaxed load + branch.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "fault/rt_inject.hpp"
#include "obs/rt_probe.hpp"
#include "rt/reclaim.hpp"
#include "util/assert.hpp"

namespace apram::rt {

// ---------------------------------------------------------------------------
// Bounded-memory registers (default): VersionArena underneath.
// ---------------------------------------------------------------------------

template <class T>
class BoundedSWMRRegister {
 public:
  explicit BoundedSWMRRegister(T initial) : arena_(1, std::move(initial)) {}

  BoundedSWMRRegister(const BoundedSWMRRegister&) = delete;
  BoundedSWMRRegister& operator=(const BoundedSWMRRegister&) = delete;

  // Any thread. Wait-free: one fetch_add (acquire), copy, one fetch_sub
  // (release). The returned value is the caller's own copy.
  T read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const auto ref = arena_.acquire();
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_hold();
    }
    T v = arena_.get(ref);
    arena_.release(ref);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  // Owner thread only (single writer). Wait-free: allocate (own free list),
  // one exchange to install, one fetch_add to transfer the old version's
  // acquire count.
  void write(T v) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    arena_.publish(arena_.alloc(0, std::move(v)));
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_write();
    }
  }

  // Space diagnostics: number of values ever written (incl. the initial).
  // Monotone even though slots recycle.
  std::size_t versions() const {
    return static_cast<std::size_t>(arena_.stats().allocated);
  }

  reclaim::ReclaimStats reclaim_stats() const { return arena_.stats(); }

  // The probe must outlive the register (or a detaching attach_probe(nullptr)
  // call). Attach before concurrent use begins; the pointer itself is atomic,
  // but the probe's metric handles are read without further synchronization.
  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  // The injector must outlive the register (or a detaching
  // attach_injector(nullptr) call). Attach before concurrent use.
  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  mutable reclaim::VersionArena<T> arena_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

// Multi-writer register with value-compared compare-and-swap over
// arbitrarily large values, bounded-memory flavour. compare_exchange
// compares the CURRENT VALUE with T's operator== — which must identify
// distinct writes (distinct published values never compare equal; Stamped<T>
// in farray/farray.hpp is the standard recipe) — and succeeds via a CAS
// on the arena control word. The caller's own acquire pins the expected
// version, so the control-word compare cannot ABA (a held slot cannot be
// retired, hence cannot be reallocated and re-published). A loser returns
// its prepared slot to the free list immediately (failed-CAS cleanup).
template <class T>
class BoundedCASValueRegister {
 public:
  BoundedCASValueRegister(int num_writers, T initial)
      : arena_(num_writers, std::move(initial)) {
    APRAM_CHECK(num_writers >= 1);
  }

  BoundedCASValueRegister(const BoundedCASValueRegister&) = delete;
  BoundedCASValueRegister& operator=(const BoundedCASValueRegister&) = delete;

  // Any thread. Wait-free: acquire, copy, release.
  T read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const auto ref = arena_.acquire();
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_hold();
    }
    T v = arena_.get(ref);
    arena_.release(ref);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  // One atomic step by thread `pid`: if the current value equals `expected`
  // (T's operator==), install `desired` and return true. The reader-side
  // hold is released AFTER the install attempt (the ATOMSNAP CAS-ordering
  // rule): the hold is what makes the install ABA-free.
  bool compare_exchange(int pid, const T& expected, T desired) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const auto ref = arena_.acquire();
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_hold();
    }
    bool ok = arena_.get(ref) == expected;
    if (ok) {
      const std::uint32_t d = arena_.alloc(pid, std::move(desired));
      ok = arena_.try_publish(ref, d);
      if (!ok) arena_.dealloc(d);  // loser returns its slot immediately
    }
    arena_.release(ref);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_cas(ok);
    }
    return ok;
  }

  // Space diagnostics: values ever prepared (incl. the initial; counts slots
  // from failed swaps too). Monotone even though slots recycle.
  std::size_t versions() const {
    return static_cast<std::size_t>(arena_.stats().allocated);
  }

  reclaim::ReclaimStats reclaim_stats() const { return arena_.stats(); }

  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  mutable reclaim::VersionArena<T> arena_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

// ---------------------------------------------------------------------------
// Unbounded registers: the paper's assumption, verbatim. Grow-only node
// stores, nothing freed before destruction. std::deque guarantees reference
// stability under push_back, and only the single writer touches the deque
// structure, so reads race with nothing.
// ---------------------------------------------------------------------------

template <class T>
class UnboundedSWMRRegister {
 public:
  explicit UnboundedSWMRRegister(T initial) {
    nodes_.push_back(std::move(initial));
    current_.store(&nodes_.back(), std::memory_order_release);
  }

  UnboundedSWMRRegister(const UnboundedSWMRRegister&) = delete;
  UnboundedSWMRRegister& operator=(const UnboundedSWMRRegister&) = delete;

  // Any thread. Wait-free: one acquire load, then a copy of the immutable
  // node (nodes are never reclaimed, so the dereference is always safe).
  T read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    T v = *current_.load(std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  // Owner thread only (single writer). Wait-free: one release store.
  void write(T v) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    nodes_.push_back(std::move(v));
    current_.store(&nodes_.back(), std::memory_order_release);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_write();
    }
  }

  // Space diagnostics: number of values ever written (incl. the initial).
  std::size_t versions() const { return nodes_.size(); }

  // Nothing is recycled here; live == allocated by construction.
  reclaim::ReclaimStats reclaim_stats() const {
    reclaim::ReclaimStats s;
    s.allocated = nodes_.size();
    return s;
  }

  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  std::deque<T> nodes_;
  std::atomic<const T*> current_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

// Unbounded multi-writer register with value-compared CAS: one grow-only
// node store per writer (writer `pid` appends only to store `pid`, so no
// store is ever touched by two threads), swap done on the publication
// pointer. Sound under the same operator==-identifies-writes contract as the
// bounded flavour: published nodes are never recycled, so the pointer CAS
// cannot ABA. Nodes from failed swaps stay in their writer's store — the
// unbounded-register assumption again.
template <class T>
class UnboundedCASValueRegister {
 public:
  UnboundedCASValueRegister(int num_writers, T initial)
      : initial_(std::move(initial)),
        stores_(static_cast<std::size_t>(num_writers)) {
    APRAM_CHECK(num_writers >= 1);
    current_.store(&initial_, std::memory_order_release);
  }

  UnboundedCASValueRegister(const UnboundedCASValueRegister&) = delete;
  UnboundedCASValueRegister& operator=(const UnboundedCASValueRegister&) =
      delete;

  // Any thread. Wait-free: one acquire load, then a copy.
  T read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    T v = *current_.load(std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  // One atomic step by thread `pid`: if the current value equals `expected`
  // (T's operator==), install `desired` and return true. Wait-free — a
  // failed pointer CAS is a failed operation, never a retry loop.
  bool compare_exchange(int pid, const T& expected, T desired) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const T* cur = current_.load(std::memory_order_acquire);
    bool ok = *cur == expected;
    if (ok) {
      std::deque<T>& store = stores_[static_cast<std::size_t>(pid)].nodes;
      store.push_back(std::move(desired));
      ok = current_.compare_exchange_strong(cur, &store.back(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
    }
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_cas(ok);
    }
    return ok;
  }

  // Space diagnostics: values ever prepared (incl. the initial; counts nodes
  // from failed swaps too).
  std::size_t versions() const {
    std::size_t total = 1;
    for (const Store& s : stores_) total += s.nodes.size();
    return total;
  }

  reclaim::ReclaimStats reclaim_stats() const {
    reclaim::ReclaimStats s;
    s.allocated = versions();
    return s;
  }

  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  // Per-writer stores live on their own cache lines.
  struct alignas(64) Store {
    std::deque<T> nodes;
  };

  T initial_;
  std::vector<Store> stores_;
  std::atomic<const T*> current_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

// ---------------------------------------------------------------------------
// Default aliases: bounded-memory unless the build opts into exact
// paper-mode with -DAPRAM_RT_UNBOUNDED (cmake -DAPRAM_RT_UNBOUNDED=ON).
// Every rt algorithm and the api::RtBackend go through these names, so the
// whole stack switches together with zero call-site changes.
// ---------------------------------------------------------------------------

#ifdef APRAM_RT_UNBOUNDED
template <class T>
using SWMRRegister = UnboundedSWMRRegister<T>;
template <class T>
using CASValueRegister = UnboundedCASValueRegister<T>;
#else
template <class T>
using SWMRRegister = BoundedSWMRRegister<T>;
template <class T>
using CASValueRegister = BoundedCASValueRegister<T>;
#endif

// Multi-writer register with compare-and-swap — the building block for rt
// structures that go beyond the paper's read/write base model (and the
// source of kCas trace events). T must be trivially copyable and small
// enough for the platform's lock-free std::atomic<T>. No versioning, so no
// reclamation needed: the value lives inline.
template <class T>
class CASRegister {
 public:
  explicit CASRegister(T initial) : v_(initial) {
    static_assert(std::atomic<T>::is_always_lock_free,
                  "CASRegister requires a lock-free std::atomic<T>");
  }

  CASRegister(const CASRegister&) = delete;
  CASRegister& operator=(const CASRegister&) = delete;

  T read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const T v = v_.load(std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  void write(T v) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    v_.store(v, std::memory_order_release);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_write();
    }
  }

  // On failure `expected` is updated to the observed value, as with
  // std::atomic::compare_exchange_strong.
  bool compare_exchange(T& expected, T desired) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const bool ok = v_.compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel,
        std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_cas(ok);
    }
    return ok;
  }

  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  std::atomic<T> v_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

}  // namespace apram::rt
