// Real-thread atomic registers (the `apram::rt` runtime).
//
// The paper's model assumes atomic registers large enough to hold whole
// arrays ("numerous techniques exist for constructing large atomic registers
// from smaller ones"). On real hardware we realize an arbitrarily large
// single-writer multi-reader atomic register by publishing immutable nodes
// through one std::atomic pointer:
//
//   * write (owner thread only): append the new value to a grow-only node
//     store, then release-store its address. One atomic store.
//   * read (any thread): one acquire-load, then dereference. Wait-free.
//
// Nodes are never mutated after publication and never freed before the
// register is destroyed, mirroring the paper's unbounded-register
// assumption (see DESIGN.md substitution table). std::deque guarantees
// reference stability under push_back, and only the single writer touches
// the deque structure, so reads race with nothing.
// Both register flavours carry an optional apram::obs probe (attach_probe):
// unattached, an access pays one relaxed pointer load and a predictable
// branch; attached, each access is counted (relaxed fetch_add) and — when
// the calling thread has a model pid — traced with an rt timestamp.
//
// They also carry an optional apram::fault::RtInjector (attach_injector)
// that fires BEFORE the access takes effect — the injection point is the
// access boundary, the only place the model lets an adversary act. The
// unattached cost is the same one relaxed load + branch as the probe.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "fault/rt_inject.hpp"
#include "obs/rt_probe.hpp"
#include "util/assert.hpp"

namespace apram::rt {

template <class T>
class SWMRRegister {
 public:
  explicit SWMRRegister(T initial) {
    nodes_.push_back(std::move(initial));
    current_.store(&nodes_.back(), std::memory_order_release);
  }

  SWMRRegister(const SWMRRegister&) = delete;
  SWMRRegister& operator=(const SWMRRegister&) = delete;

  // Any thread. Wait-free: one acquire load. The reference stays valid for
  // the register's lifetime (nodes are immutable and never reclaimed).
  const T& read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const T& v = *current_.load(std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  // Owner thread only (single writer). Wait-free: one release store.
  void write(T v) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    nodes_.push_back(std::move(v));
    current_.store(&nodes_.back(), std::memory_order_release);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_write();
    }
  }

  // Space diagnostics: number of values ever written (incl. the initial).
  std::size_t versions() const { return nodes_.size(); }

  // The probe must outlive the register (or a detaching attach_probe(nullptr)
  // call). Attach before concurrent use begins; the pointer itself is atomic,
  // but the probe's metric handles are read without further synchronization.
  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  // The injector must outlive the register (or a detaching
  // attach_injector(nullptr) call). Attach before concurrent use begins.
  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  std::deque<T> nodes_;
  std::atomic<const T*> current_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

// Multi-writer register with compare-and-swap — the building block for rt
// structures that go beyond the paper's read/write base model (and the
// source of kCas trace events). T must be trivially copyable and small
// enough for the platform's lock-free std::atomic<T>.
template <class T>
class CASRegister {
 public:
  explicit CASRegister(T initial) : v_(initial) {
    static_assert(std::atomic<T>::is_always_lock_free,
                  "CASRegister requires a lock-free std::atomic<T>");
  }

  CASRegister(const CASRegister&) = delete;
  CASRegister& operator=(const CASRegister&) = delete;

  T read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const T v = v_.load(std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  void write(T v) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    v_.store(v, std::memory_order_release);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_write();
    }
  }

  // On failure `expected` is updated to the observed value, as with
  // std::atomic::compare_exchange_strong.
  bool compare_exchange(T& expected, T desired) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const bool ok = v_.compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel,
        std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_cas(ok);
    }
    return ok;
  }

  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  std::atomic<T> v_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

// Multi-writer register with compare-and-swap over arbitrarily large values
// — CASRegister without the trivially-copyable restriction. Same
// immutable-node publication trick as SWMRRegister, with one grow-only node
// store per writer (writer `pid` appends only to store `pid`, so no store is
// ever touched by two threads) and the swap done on the publication pointer.
//
// compare_exchange compares the CURRENT VALUE with T's operator==, not the
// pointer — but succeeds via a pointer CAS. That is sound exactly when
// operator== identifies distinct writes (distinct published values never
// compare equal): then value-equality pins the pointer, published nodes are
// never recycled, and the pointer CAS cannot ABA. Stamped<T> in
// snapshot/tree_scan.hpp is the standard recipe. Nodes from failed swaps
// stay in their writer's store — the unbounded-register assumption again;
// versions() reports the total for space diagnostics.
template <class T>
class CASValueRegister {
 public:
  CASValueRegister(int num_writers, T initial)
      : initial_(std::move(initial)),
        stores_(static_cast<std::size_t>(num_writers)) {
    APRAM_CHECK(num_writers >= 1);
    current_.store(&initial_, std::memory_order_release);
  }

  CASValueRegister(const CASValueRegister&) = delete;
  CASValueRegister& operator=(const CASValueRegister&) = delete;

  // Any thread. Wait-free: one acquire load. The reference stays valid for
  // the register's lifetime.
  const T& read() const {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const T& v = *current_.load(std::memory_order_acquire);
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_read();
    }
    return v;
  }

  // One atomic step by thread `pid`: if the current value equals `expected`
  // (T's operator==), install `desired` and return true. Wait-free — a
  // failed pointer CAS is a failed operation, never a retry loop.
  bool compare_exchange(int pid, const T& expected, T desired) {
    if (fault::RtInjector* inj = injector_.load(std::memory_order_relaxed)) {
      inj->on_access();
    }
    const T* cur = current_.load(std::memory_order_acquire);
    bool ok = *cur == expected;
    if (ok) {
      std::deque<T>& store =
          stores_[static_cast<std::size_t>(pid)].nodes;
      store.push_back(std::move(desired));
      ok = current_.compare_exchange_strong(cur, &store.back(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
    }
    if (const obs::RtProbe* p = probe_.load(std::memory_order_relaxed)) {
      p->on_cas(ok);
    }
    return ok;
  }

  // Space diagnostics: values ever prepared (incl. the initial; counts nodes
  // from failed swaps too).
  std::size_t versions() const {
    std::size_t total = 1;
    for (const Store& s : stores_) total += s.nodes.size();
    return total;
  }

  void attach_probe(const obs::RtProbe* probe) {
    probe_.store(probe, std::memory_order_release);
  }

  void attach_injector(fault::RtInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  // Per-writer stores live on their own cache lines.
  struct alignas(64) Store {
    std::deque<T> nodes;
  };

  T initial_;
  std::vector<Store> stores_;
  std::atomic<const T*> current_;
  std::atomic<const obs::RtProbe*> probe_{nullptr};
  std::atomic<fault::RtInjector*> injector_{nullptr};
};

}  // namespace apram::rt
