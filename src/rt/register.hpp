// Real-thread atomic registers (the `apram::rt` runtime).
//
// The paper's model assumes atomic registers large enough to hold whole
// arrays ("numerous techniques exist for constructing large atomic registers
// from smaller ones"). On real hardware we realize an arbitrarily large
// single-writer multi-reader atomic register by publishing immutable nodes
// through one std::atomic pointer:
//
//   * write (owner thread only): append the new value to a grow-only node
//     store, then release-store its address. One atomic store.
//   * read (any thread): one acquire-load, then dereference. Wait-free.
//
// Nodes are never mutated after publication and never freed before the
// register is destroyed, mirroring the paper's unbounded-register
// assumption (see DESIGN.md substitution table). std::deque guarantees
// reference stability under push_back, and only the single writer touches
// the deque structure, so reads race with nothing.
#pragma once

#include <atomic>
#include <deque>
#include <utility>

#include "util/assert.hpp"

namespace apram::rt {

template <class T>
class SWMRRegister {
 public:
  explicit SWMRRegister(T initial) {
    nodes_.push_back(std::move(initial));
    current_.store(&nodes_.back(), std::memory_order_release);
  }

  SWMRRegister(const SWMRRegister&) = delete;
  SWMRRegister& operator=(const SWMRRegister&) = delete;

  // Any thread. Wait-free: one acquire load. The reference stays valid for
  // the register's lifetime (nodes are immutable and never reclaimed).
  const T& read() const {
    return *current_.load(std::memory_order_acquire);
  }

  // Owner thread only (single writer). Wait-free: one release store.
  void write(T v) {
    nodes_.push_back(std::move(v));
    current_.store(&nodes_.back(), std::memory_order_release);
  }

  // Space diagnostics: number of values ever written (incl. the initial).
  std::size_t versions() const { return nodes_.size(); }

 private:
  std::deque<T> nodes_;
  std::atomic<const T*> current_;
};

}  // namespace apram::rt
