// Small real-thread harness for stress tests and wall-time benchmarks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "fault/rt_inject.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace apram::rt {

// Runs body(pid) on `num_threads` threads, released simultaneously by a
// start barrier, and joins them all. Exceptions escaping a body terminate
// (concurrent test bodies must not throw).
//
// Each worker declares its obs identity before the body runs: metrics shard
// and trace ring == pid, so instrumented registers attribute work to the
// right model process. With a tracer (one ring per thread required), every
// thread additionally emits kSpawn/kDone events; the join in parallel_run is
// the quiescence point after which tracer reads are exact.
void parallel_run(int num_threads, const std::function<void(int)>& body,
                  obs::Tracer* tracer = nullptr);

// parallel_run with a hard stall: arms `injector` so that thread `victim`
// parks after exactly `stall_after` register accesses (see
// fault::RtInjector::arm_stall), waits for the victim to actually park —
// or for its body to finish first, mirroring the sim's completion-wins
// crash semantics — runs `while_stalled()` on the calling thread against
// the victim's half-finished state, releases the stall, and joins.
//
// `point` selects where the victim parks: at the top of an access (the
// default) or mid-read between version acquire and dereference
// (fault::StallPoint::kHold) — the latter pins a version of a bounded
// register for the whole while_stalled() window.
//
// The injector must already be attached to the registers the bodies use.
// while_stalled executes on the caller, which has no model pid, so its own
// register accesses pass through the injector uninjected.
void run_with_stall(int num_threads, const std::function<void(int)>& body,
                    fault::RtInjector& injector, int victim,
                    std::uint64_t stall_after,
                    const std::function<void()>& while_stalled,
                    obs::Tracer* tracer = nullptr,
                    fault::StallPoint point = fault::StallPoint::kAccess);

// Cooperative stop flag + per-thread op counters for throughput runs:
// threads loop `while (!stop)` calling the operation under test; the main
// thread sleeps for the measurement window and then raises stop.
class ThroughputRun {
 public:
  explicit ThroughputRun(int num_threads);

  // body(pid) performs ONE operation; returns total ops/sec and fills
  // per-thread op counts.
  double run(std::chrono::milliseconds window,
             const std::function<void(int)>& body);

  // Count-based variant: every thread performs exactly `ops_per_thread`
  // operations. Use this for structures whose memory grows per operation
  // (the unbounded-register rt implementations) — a time window at an
  // unknown op rate gives unbounded allocation, a count gives a bound known
  // up front. Returns total ops/sec over the wall time of the slowest
  // thread.
  double run_ops(std::uint64_t ops_per_thread,
                 const std::function<void(int)>& body);

  const std::vector<std::uint64_t>& ops_per_thread() const { return ops_; }

  // Publishes the last run's per-thread op counts as gauges
  // `<prefix>.ops.p<pid>` plus `<prefix>.ops_total` into `registry`.
  void export_metrics(obs::Registry& registry,
                      const std::string& prefix) const;

 private:
  int n_;
  std::vector<std::uint64_t> ops_;
};

}  // namespace apram::rt
