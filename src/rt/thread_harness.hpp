// Small real-thread harness for stress tests and wall-time benchmarks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

namespace apram::rt {

// Runs body(pid) on `num_threads` threads, released simultaneously by a
// start barrier, and joins them all. Exceptions escaping a body terminate
// (concurrent test bodies must not throw).
void parallel_run(int num_threads, const std::function<void(int)>& body);

// Cooperative stop flag + per-thread op counters for throughput runs:
// threads loop `while (!stop)` calling the operation under test; the main
// thread sleeps for the measurement window and then raises stop.
class ThroughputRun {
 public:
  explicit ThroughputRun(int num_threads);

  // body(pid) performs ONE operation; returns total ops/sec and fills
  // per-thread op counts.
  double run(std::chrono::milliseconds window,
             const std::function<void(int)>& body);

  const std::vector<std::uint64_t>& ops_per_thread() const { return ops_; }

 private:
  int n_;
  std::vector<std::uint64_t> ops_;
};

}  // namespace apram::rt
