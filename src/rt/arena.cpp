#include "rt/register.hpp"

// The rt module's storage strategy (grow-only node stores inside
// SWMRRegister) is header-only; this anchor compiles it standalone.
