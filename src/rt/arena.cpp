// Compile anchor + layout audit for the rt versioned-arena subsystem.
//
// The arena and registers are header-only templates; this TU instantiates
// the full surface standalone for representative payloads (a trivially
// copyable scalar and a heap-owning vector) so layout regressions and
// template breakage surface in the library build, not in whichever test
// happens to instantiate the broken combination first.
#include <cstdint>
#include <vector>

#include "rt/reclaim.hpp"
#include "rt/register.hpp"

namespace apram::rt {

template class reclaim::VersionArena<int>;
template class reclaim::VersionArena<std::vector<std::uint64_t>>;
template class BoundedSWMRRegister<int>;
template class BoundedSWMRRegister<std::vector<std::uint64_t>>;
template class BoundedCASValueRegister<std::vector<std::uint64_t>>;
template class UnboundedSWMRRegister<int>;
template class UnboundedCASValueRegister<std::vector<std::uint64_t>>;

namespace {

using ArenaI = reclaim::VersionArena<int>;

// Control-word packing: count and handle must tile the 64-bit word exactly,
// and every addressable slot (plus the kNilSlot sentinel, which only ever
// lives in free-list links, never in the control word) must fit the handle
// field.
static_assert(ArenaI::kSlotBits == 24);
static_assert(ArenaI::kCountOne == (std::uint64_t{1} << ArenaI::kSlotBits));
static_assert(ArenaI::kSlotMask == ArenaI::kCountOne - 1);
static_assert(ArenaI::kMaxSlots < ArenaI::kSlotMask,
              "slot handles must be representable in the control word");
static_assert(ArenaI::kNilSlot > ArenaI::kSlotMask,
              "the nil sentinel must be outside the handle range");

// Cache-line audit, whole-class view (the per-member asserts live inside
// VersionArena where the private types are visible): the arena itself is
// line-aligned because its first hot member (the control word) is, so two
// arenas in an array never share the control line.
static_assert(alignof(ArenaI) >= 64);
static_assert(alignof(reclaim::VersionArena<std::vector<std::uint64_t>>) >=
              64);

// The one-instruction reader protocol needs a genuinely atomic 64-bit RMW.
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "the control word must be a native atomic");

}  // namespace

}  // namespace apram::rt
