// Real-thread double-collect snapshot baseline (see
// snapshot/baselines/double_collect.hpp for the algorithm and its
// obstruction-freedom caveat).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rt/register.hpp"

namespace apram::rt {

template <class T>
class DoubleCollectSnapshotRT {
 public:
  struct Slot {
    std::uint64_t tag = 0;
    T value{};
  };

  explicit DoubleCollectSnapshotRT(int num_procs) : n_(num_procs) {
    for (int p = 0; p < n_; ++p) {
      slots_.push_back(std::make_unique<SWMRRegister<Slot>>(Slot{}));
      tags_.push_back(std::make_unique<Tag>());
    }
  }

  int num_procs() const { return n_; }

  void update(int p, T v) {
    const auto up = static_cast<std::size_t>(p);
    slots_[up]->write(Slot{++tags_[up]->value, std::move(v)});
  }

  // Retries until a clean double collect. `attempts_out`, when provided,
  // reports how many collect pairs were needed (the unbounded quantity that
  // distinguishes this baseline from the wait-free scan).
  std::vector<std::optional<T>> scan(int /*p*/,
                                     std::uint64_t* attempts_out = nullptr) {
    std::vector<Slot> first(static_cast<std::size_t>(n_));
    std::vector<Slot> second(static_cast<std::size_t>(n_));
    std::uint64_t attempts = 0;
    for (;;) {
      ++attempts;
      for (int q = 0; q < n_; ++q) {
        first[static_cast<std::size_t>(q)] =
            slots_[static_cast<std::size_t>(q)]->read();
      }
      for (int q = 0; q < n_; ++q) {
        second[static_cast<std::size_t>(q)] =
            slots_[static_cast<std::size_t>(q)]->read();
      }
      bool clean = true;
      for (int q = 0; q < n_ && clean; ++q) {
        clean = first[static_cast<std::size_t>(q)].tag ==
                second[static_cast<std::size_t>(q)].tag;
      }
      if (clean) {
        if (attempts_out != nullptr) *attempts_out = attempts;
        std::vector<std::optional<T>> view(static_cast<std::size_t>(n_));
        for (int q = 0; q < n_; ++q) {
          const Slot& s = second[static_cast<std::size_t>(q)];
          if (s.tag != 0) view[static_cast<std::size_t>(q)] = s.value;
        }
        return view;
      }
    }
  }

 private:
  struct alignas(64) Tag {
    std::uint64_t value = 0;
  };

  int n_;
  std::vector<std::unique_ptr<SWMRRegister<Slot>>> slots_;
  std::vector<std::unique_ptr<Tag>> tags_;
};

}  // namespace apram::rt
